//! Request micro-batching with bounded-queue backpressure.
//!
//! Concurrent `/predict` requests land in one bounded queue; worker
//! threads coalesce them into a single forward pass. Because every
//! layer computes its output rows independently (see
//! `Network::predict_batch`), a row's scores are bit-identical
//! whether it runs alone or packed with strangers — batching is
//! purely a throughput trade: one matmul over 64 rows amortizes
//! per-pass overhead that 64 single-row passes each pay in full.
//!
//! The queue is bounded in *rows*, not requests, so a single 256-row
//! batch request counts like 256 singles. When admission would exceed
//! the bound, [`Batcher::submit`] refuses immediately and the caller
//! turns that into `503 Retry-After` — load sheds at the front door
//! instead of accumulating latency (or memory) inside.

use crate::metrics::Metrics;
use crate::registry::ModelHandle;
use crate::ServeError;
use nd_linalg::Mat;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batching knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Most rows coalesced into one forward pass.
    pub max_batch: usize,
    /// Longest a queued row waits for company before the batch runs
    /// anyway.
    pub max_wait: Duration,
    /// Admission bound: queued rows beyond this are rejected.
    pub queue_capacity: usize,
    /// Worker threads running forward passes.
    pub workers: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
            queue_capacity: 1024,
            workers: 2,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full; retry after backoff.
    Overloaded {
        /// Rows currently queued.
        queued_rows: usize,
    },
    /// The batcher is draining for shutdown.
    ShuttingDown,
}

struct Job {
    handle: Arc<ModelHandle>,
    rows: Vec<Vec<f64>>,
    tx: Sender<Vec<Vec<f64>>>,
}

struct State {
    queue: VecDeque<Job>,
    queued_rows: usize,
    open: bool,
}

/// The shared queue plus its worker pool.
pub struct Batcher {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

struct Inner {
    state: Mutex<State>,
    cond: Condvar,
    config: BatchConfig,
    metrics: Arc<Metrics>,
    completed: AtomicU64,
}

impl Batcher {
    /// Starts the worker pool. Fails only when the OS refuses to
    /// spawn threads.
    pub fn start(config: BatchConfig, metrics: Arc<Metrics>) -> Result<Batcher, ServeError> {
        let inner = Arc::new(Inner {
            state: Mutex::new(State { queue: VecDeque::new(), queued_rows: 0, open: true }),
            cond: Condvar::new(),
            config,
            metrics,
            completed: AtomicU64::new(0),
        });
        let workers = (0..inner.config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("nd-serve-batch-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .map_err(ServeError::Io)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Batcher { inner, workers: Mutex::new(workers) })
    }

    /// Queues `rows` for prediction on `handle`'s model version. The
    /// returned channel yields one output row per input row, in
    /// order, bit-identical to `handle.network.predict_batch`.
    pub fn submit(
        &self,
        handle: Arc<ModelHandle>,
        rows: Vec<Vec<f64>>,
    ) -> Result<Receiver<Vec<Vec<f64>>>, SubmitError> {
        // Poison recovery everywhere a lock is taken: a panicking
        // worker must degrade one response, not wedge the service
        // behind a poisoned mutex. The queue state stays consistent
        // because every mutation below is a single non-panicking step.
        let mut state = self.inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !state.open {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queued_rows + rows.len() > self.inner.config.queue_capacity {
            self.inner.metrics.overload_rejections.inc();
            return Err(SubmitError::Overloaded { queued_rows: state.queued_rows });
        }
        let (tx, rx) = mpsc::channel();
        state.queued_rows += rows.len();
        state.queue.push_back(Job { handle, rows, tx });
        drop(state);
        self.inner.cond.notify_one();
        Ok(rx)
    }

    /// Rows currently waiting (for the `/metrics` gauge).
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().unwrap_or_else(PoisonError::into_inner).queued_rows
    }

    /// Rows whose forward pass has finished since startup. Monotone;
    /// the shard layer differences it over time to estimate drain
    /// rate for `Retry-After`.
    pub fn completed_rows(&self) -> u64 {
        self.inner.completed.load(Ordering::Relaxed)
    }

    /// Closes admission, runs every queued job to completion, and
    /// joins the workers. Nothing already accepted is dropped.
    /// Idempotent: later calls are no-ops.
    pub fn drain(&self) {
        {
            let mut state = self.inner.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.open = false;
        }
        self.inner.cond.notify_all();
        // Take the handles under the lock, join outside it: joining
        // while holding `workers` would block any concurrent drain()
        // caller for the full flush instead of letting it observe the
        // already-emptied list and return.
        let workers: Vec<JoinHandle<()>> = {
            let mut guard = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
            guard.drain(..).collect()
        };
        for worker in workers {
            // nd-lint: allow(result-dropped) — join only errs if the worker panicked; drain is teardown
            let _ = worker.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let batch = {
            let mut state = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
            // Sleep until there is work or we are told to finish.
            while state.queue.is_empty() && state.open {
                state = inner.cond.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
            if state.queue.is_empty() {
                return; // drained and closed
            }
            // Micro-batch window: give stragglers up to `max_wait` to
            // pile in, unless the pass is already full or we are
            // draining. The window is adaptive: it waits in short
            // slices and exits as soon as a slice passes with no new
            // rows — paying the full `max_wait` on every pass would
            // serialize idle time behind each forward pass and cap
            // throughput at `max_batch / max_wait` even with work
            // already queued.
            let deadline = Instant::now() + inner.config.max_wait;
            let slice = (inner.config.max_wait / 8).max(Duration::from_micros(50));
            while state.open && state.queued_rows < inner.config.max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let before = state.queued_rows;
                let (next, _timeout) = inner
                    .cond
                    .wait_timeout(state, slice.min(deadline - now))
                    .unwrap_or_else(PoisonError::into_inner);
                state = next;
                if state.queue.is_empty() || state.queued_rows == before {
                    // Another worker emptied the queue, or arrivals
                    // have stopped — run with what we have.
                    break;
                }
            }
            if state.queue.is_empty() {
                continue; // another worker took everything
            }
            take_batch(&mut state, inner.config.max_batch)
        };
        run_batch(inner, batch);
    }
}

/// Pops the longest front run of jobs sharing the first job's model
/// handle, up to `max_batch` rows. The first job is always taken even
/// if oversized, so giant batch requests cannot wedge the queue.
fn take_batch(state: &mut State, max_batch: usize) -> Vec<Job> {
    let mut batch: Vec<Job> = Vec::new();
    let mut rows = 0;
    while let Some(front) = state.queue.front() {
        let same_model = batch
            .first()
            .is_none_or(|first: &Job| Arc::ptr_eq(&first.handle, &front.handle));
        if !same_model || (!batch.is_empty() && rows + front.rows.len() > max_batch) {
            break;
        }
        let Some(job) = state.queue.pop_front() else { break };
        rows += job.rows.len();
        state.queued_rows -= job.rows.len();
        batch.push(job);
    }
    batch
}

fn run_batch(inner: &Inner, batch: Vec<Job>) {
    let Some(first) = batch.first() else { return };
    let handle = Arc::clone(&first.handle);
    let all_rows: Vec<Vec<f64>> =
        batch.iter().flat_map(|job| job.rows.iter().cloned()).collect();
    let n_rows = all_rows.len();
    inner.metrics.batches.inc();
    inner.metrics.batch_rows.observe(n_rows as u64);
    // Row widths were validated at admission; if ragged input slips
    // through anyway, dropping the senders here turns into RecvError
    // at each caller, which the server maps to a 500 — one bad batch
    // must not take the worker thread down with it.
    let Ok(input) = Mat::from_rows(&all_rows) else { return };
    let output = handle.network.predict_batch(&input);
    inner.completed.fetch_add(n_rows as u64, Ordering::Relaxed);
    let mut cursor = 0;
    for job in batch {
        let scores: Vec<Vec<f64>> = (cursor..cursor + job.rows.len())
            .map(|i| output.row(i).to_vec())
            .collect();
        cursor += job.rows.len();
        // A receiver that hung up just discards its rows.
        // nd-lint: allow(result-dropped) — send errs only when the receiver is gone; nothing to deliver to
        let _ = job.tx.send(scores);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelHandle;
    use nd_core::predict::build_mlp;

    fn handle(seed: u64) -> Arc<ModelHandle> {
        let network = build_mlp(6, seed);
        Arc::new(ModelHandle {
            name: "m".into(),
            version: seed,
            input_dim: 6,
            n_params: network.n_params(),
            network,
        })
    }

    fn row(seed: u64) -> Vec<f64> {
        (0..6).map(|j| (seed as f64) * 0.1 + j as f64).collect()
    }

    #[test]
    fn batched_output_matches_offline_bit_for_bit() {
        let h = handle(3);
        let batcher = Batcher::start(
            BatchConfig { max_batch: 8, ..BatchConfig::default() },
            Arc::new(Metrics::default()),
        )
        .unwrap();
        let rxs: Vec<_> = (0..10)
            .map(|i| batcher.submit(Arc::clone(&h), vec![row(i)]).unwrap())
            .collect();
        for (i, rx) in rxs.into_iter().enumerate() {
            let got = rx.recv().unwrap();
            let offline = h
                .network
                .predict_batch(&Mat::from_rows(&[row(i as u64)]).unwrap());
            assert_eq!(got, vec![offline.row(0).to_vec()], "row {i}");
        }
        batcher.drain();
    }

    #[test]
    fn coalesces_under_concurrency() {
        let h = handle(1);
        let metrics = Arc::new(Metrics::default());
        let batcher = Arc::new(
            Batcher::start(
                BatchConfig {
                    max_batch: 64,
                    max_wait: Duration::from_millis(20),
                    workers: 1,
                    ..BatchConfig::default()
                },
                Arc::clone(&metrics),
            )
            .unwrap(),
        );
        let threads: Vec<_> = (0..16)
            .map(|i| {
                let batcher = Arc::clone(&batcher);
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    batcher.submit(h, vec![row(i)]).unwrap().recv().unwrap()
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let batches = metrics.batches.get();
        assert!(batches < 16, "16 concurrent singles ran {batches} passes");
        assert_eq!(metrics.batch_rows.sum(), 16);
        batcher.drain();
    }

    #[test]
    fn overload_is_rejected_not_queued() {
        let h = handle(1);
        let batcher = Batcher::start(
            BatchConfig {
                queue_capacity: 4,
                max_wait: Duration::from_millis(200),
                workers: 1,
                ..BatchConfig::default()
            },
            Arc::new(Metrics::default()),
        )
        .unwrap();
        // One slow batch occupies the worker inside its wait window
        // while we fill the queue behind it.
        let first = batcher.submit(Arc::clone(&h), vec![row(0), row(1)]).unwrap();
        let mut accepted = vec![first];
        let mut rejected = 0;
        for i in 0..8 {
            match batcher.submit(Arc::clone(&h), vec![row(i + 2)]) {
                Ok(rx) => accepted.push(rx),
                Err(SubmitError::Overloaded { .. }) => rejected += 1,
                Err(e) => panic!("{e:?}"),
            }
        }
        assert!(rejected > 0, "queue_capacity=4 must shed some of 10 rows");
        for rx in accepted {
            rx.recv().unwrap();
        }
        batcher.drain();
    }

    #[test]
    fn mixed_models_never_share_a_pass() {
        let (a, b) = (handle(1), handle(2));
        let batcher = Batcher::start(
            BatchConfig { max_wait: Duration::from_millis(20), workers: 1, ..Default::default() },
            Arc::new(Metrics::default()),
        )
        .unwrap();
        let rxs: Vec<_> = (0..6)
            .map(|i| {
                let h = if i % 2 == 0 { &a } else { &b };
                (i, batcher.submit(Arc::clone(h), vec![row(i)]).unwrap())
            })
            .collect();
        for (i, rx) in rxs {
            let h = if i % 2 == 0 { &a } else { &b };
            let offline = h.network.predict_batch(&Mat::from_rows(&[row(i)]).unwrap());
            assert_eq!(rx.recv().unwrap(), vec![offline.row(0).to_vec()], "row {i}");
        }
        batcher.drain();
    }

    #[test]
    fn drain_completes_accepted_work_then_refuses() {
        let h = handle(1);
        let batcher = Batcher::start(
            BatchConfig { max_wait: Duration::from_millis(50), ..Default::default() },
            Arc::new(Metrics::default()),
        )
        .unwrap();
        let rxs: Vec<_> = (0..5)
            .map(|i| batcher.submit(Arc::clone(&h), vec![row(i)]).unwrap())
            .collect();
        batcher.drain();
        // Every accepted job still got an answer.
        for rx in rxs {
            assert_eq!(rx.recv().unwrap().len(), 1);
        }
    }

    #[test]
    fn submit_after_drain_refused() {
        let h = handle(1);
        let batcher =
            Batcher::start(BatchConfig::default(), Arc::new(Metrics::default())).unwrap();
        batcher.drain();
        assert_eq!(
            batcher.submit(h, vec![row(0)]).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }
}
