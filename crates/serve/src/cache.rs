//! LRU prediction cache.
//!
//! Keyed on `(model, checkpoint version, feature-vector bits)`: news
//! audiences hammer the same trending topics, so repeated queries for
//! one feature vector are served from memory without touching the
//! batcher. Keying on the *bit pattern* of the features (not an
//! epsilon) plus the model version guarantees a hit returns exactly
//! the bytes a fresh forward pass would — a hot swap changes the
//! version and therefore misses, never serving stale-model outputs.
//!
//! The LRU index is a lazy-eviction queue: reads push a fresh
//! `(stamp, key)` entry instead of splicing a linked list, and
//! eviction skips entries whose stamp no longer matches. O(1)
//! amortized, no unsafe, no pointer chasing.

use std::collections::{HashMap, VecDeque};

/// Cache key: model identity + exact input bits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    model: String,
    version: u64,
    bits: Vec<u64>,
}

impl Key {
    fn new(model: &str, version: u64, row: &[f64]) -> Key {
        Key {
            model: model.to_string(),
            version,
            bits: row.iter().map(|v| v.to_bits()).collect(),
        }
    }
}

#[derive(Debug)]
struct Slot {
    scores: Vec<f64>,
    stamp: u64,
}

/// A bounded least-recently-used map from feature rows to output
/// rows.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<Key, Slot>,
    order: VecDeque<(u64, Key)>,
    tick: u64,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` rows.
    pub fn new(capacity: usize) -> Self {
        LruCache { capacity, map: HashMap::new(), order: VecDeque::new(), tick: 0 }
    }

    /// Cached output row for this exact input, refreshing its
    /// recency.
    pub fn get(&mut self, model: &str, version: u64, row: &[f64]) -> Option<Vec<f64>> {
        let key = Key::new(model, version, row);
        let slot = self.map.get_mut(&key)?;
        self.tick += 1;
        slot.stamp = self.tick;
        let scores = slot.scores.clone();
        self.order.push_back((self.tick, key));
        self.compact();
        Some(scores)
    }

    /// Drops stale front-of-queue entries so the recency queue stays
    /// proportional to the live map even under hit-only workloads.
    fn compact(&mut self) {
        while self.order.len() > 2 * self.map.len() + 8 {
            let Some((stamp, key)) = self.order.front() else { break };
            if self.map.get(key).is_some_and(|s| s.stamp == *stamp) {
                break; // front is live: queue is as tight as it gets
            }
            self.order.pop_front();
        }
    }

    /// Stores an output row, evicting least-recently-used rows past
    /// capacity.
    pub fn insert(&mut self, model: &str, version: u64, row: &[f64], scores: Vec<f64>) {
        if self.capacity == 0 {
            return;
        }
        let key = Key::new(model, version, row);
        self.tick += 1;
        self.order.push_back((self.tick, key.clone()));
        self.map.insert(key, Slot { scores, stamp: self.tick });
        while self.map.len() > self.capacity {
            let Some((stamp, key)) = self.order.pop_front() else { break };
            // Stale queue entries (the key was touched again later)
            // are skipped; the live entry sits further back.
            if self.map.get(&key).is_some_and(|s| s.stamp == stamp) {
                self.map.remove(&key);
            }
        }
        self.compact();
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_exact_bits() {
        let mut c = LruCache::new(4);
        let row = [0.1, -0.0, f64::MIN_POSITIVE];
        c.insert("m", 1, &row, vec![1.5, 2.5]);
        assert_eq!(c.get("m", 1, &row), Some(vec![1.5, 2.5]));
        // +0.0 and -0.0 differ in bits: distinct keys by design.
        assert_eq!(c.get("m", 1, &[0.1, 0.0, f64::MIN_POSITIVE]), None);
    }

    #[test]
    fn version_change_misses() {
        let mut c = LruCache::new(4);
        c.insert("m", 1, &[1.0], vec![9.0]);
        assert!(c.get("m", 2, &[1.0]).is_none(), "swap must invalidate");
        assert!(c.get("other", 1, &[1.0]).is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("m", 1, &[1.0], vec![1.0]);
        c.insert("m", 1, &[2.0], vec![2.0]);
        // Touch [1.0] so [2.0] is the LRU entry.
        assert!(c.get("m", 1, &[1.0]).is_some());
        c.insert("m", 1, &[3.0], vec![3.0]);
        assert_eq!(c.len(), 2);
        assert!(c.get("m", 1, &[1.0]).is_some());
        assert!(c.get("m", 1, &[2.0]).is_none(), "LRU entry evicted");
        assert!(c.get("m", 1, &[3.0]).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert("m", 1, &[1.0], vec![1.0]);
        assert!(c.is_empty());
        assert!(c.get("m", 1, &[1.0]).is_none());
    }

    #[test]
    fn heavy_reuse_stays_bounded() {
        let mut c = LruCache::new(8);
        for i in 0..1000 {
            let row = [(i % 16) as f64];
            if c.get("m", 1, &row).is_none() {
                c.insert("m", 1, &row, vec![row[0] * 2.0]);
            }
        }
        assert!(c.len() <= 8);
        // The queue must not grow without bound under churn.
        assert!(c.order.len() <= 128, "lazy queue grew to {}", c.order.len());
    }
}
