//! Minimal blocking HTTP client.
//!
//! Used by the integration tests, the demo binary, and the load
//! generator — one persistent keep-alive connection per `Client`, so
//! request latency measures the server, not TCP handshakes.

use serde_json::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Cap on response headers: a misbehaving server must not make the
/// client buffer header lines without limit.
const MAX_RESPONSE_HEADERS: usize = 128;

/// A parsed response.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// First header value matching `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body parsed as JSON.
    pub fn json(&self) -> Result<Value, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }

    /// Body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One keep-alive connection to the server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sends a request and blocks for the response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> std::io::Result<Response> {
        let payload = body.map(|v| v.to_string()).unwrap_or_default();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: nd-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            payload.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(payload.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, body: &Value) -> std::io::Result<Response> {
        self.request("POST", path, Some(body))
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-response",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let status_line = self.read_line()?;
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad("bad status line"))?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
            if headers.len() >= MAX_RESPONSE_HEADERS {
                return Err(bad("too many headers"));
            }
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
        let content_length = headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .ok_or_else(|| bad("missing content-length"))?;
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(Response { status, headers, body })
    }
}
