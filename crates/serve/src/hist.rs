//! Log-bucketed latency histograms over plain atomics.
//!
//! The serving tier needs p50/p99/p999 *per shard and per endpoint*
//! without putting a lock on the request path. Each histogram is a
//! fixed array of 256 relaxed `AtomicU64` buckets on a log-linear
//! grid (4 sub-buckets per power of two, values in microseconds), so
//! `observe` is one index computation plus three `fetch_add`s — no
//! allocation, no contention beyond cache-line traffic.
//!
//! Scrapes read a [`HistSnapshot`] per histogram and merge snapshots
//! in a caller-fixed order (shard 0, 1, … — see `render_metrics`),
//! so the merged quantiles on `/metrics` are deterministic for a
//! given set of per-shard counts regardless of scrape concurrency.
//! Quantiles report the *upper bound* of the bucket holding the rank,
//! which bounds the relative error at 25% — plenty for an SLO gate
//! that compares p99s an order of magnitude apart.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: values 0–7 µs get unit buckets, everything above
/// lands in 4 sub-buckets per octave up to `u64::MAX`.
pub const N_BUCKETS: usize = 256;

/// Index of the bucket covering `v` (microseconds).
fn bucket_index(v: u64) -> usize {
    if v < 8 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // >= 3
    let sub = ((v >> (octave - 2)) & 3) as usize;
    8 + (octave - 3) * 4 + sub
}

/// Inclusive upper bound of bucket `idx`, `u64::MAX` for the last.
pub fn bucket_bound(idx: usize) -> u64 {
    if idx < 8 {
        return idx as u64;
    }
    let group = (idx - 8) / 4;
    let sub = ((idx - 8) % 4) as u64;
    if group + 3 >= 63 {
        return u64::MAX;
    }
    let width = 1u64 << (group + 1);
    (1u64 << (group + 3)) + sub * width + (width - 1)
}

/// A lock-free-ish log-bucketed histogram of microsecond latencies.
#[derive(Debug)]
pub struct LatencyHist {
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    total: AtomicU64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            counts: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }
}

impl LatencyHist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHist::default()
    }

    /// Records one latency observation (microseconds).
    pub fn observe(&self, us: u64) {
        let idx = bucket_index(us).min(N_BUCKETS - 1);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the buckets for merging and quantiles.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.total.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a histogram's buckets. Merging snapshots is plain
/// integer addition, so merge order cannot change the result — the
/// scraper still merges in fixed shard order for auditability.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    counts: Vec<u64>,
    /// Sum of all observed values (µs).
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot { counts: vec![0; N_BUCKETS], sum: 0, count: 0 }
    }
}

impl HistSnapshot {
    /// An empty snapshot to merge into.
    pub fn empty() -> Self {
        HistSnapshot::default()
    }

    /// Adds `other`'s buckets into this snapshot.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (acc, v) in self.counts.iter_mut().zip(other.counts.iter()) {
            *acc += v;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// The latency (µs) at quantile `q` in `[0, 1]`: the upper bound
    /// of the bucket containing the rank-`ceil(q·count)` observation.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(idx);
            }
        }
        bucket_bound(N_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_the_axis() {
        // Every value maps to a bucket whose bound is >= the value,
        // and bucket indexes are monotone in the value.
        let mut prev_idx = 0usize;
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, 123_456, u64::MAX / 2] {
            let idx = bucket_index(v);
            assert!(idx >= prev_idx, "index must be monotone at {v}");
            assert!(bucket_bound(idx) >= v, "bound({idx}) covers {v}");
            if idx > 8 {
                // The previous bucket must end strictly below v.
                assert!(bucket_bound(idx - 1) < v, "bucket {idx} is the first covering {v}");
            }
            prev_idx = idx;
        }
    }

    #[test]
    fn relative_error_bounded() {
        for v in [10u64, 33, 97, 1_000, 54_321, 9_999_999] {
            let bound = bucket_bound(bucket_index(v));
            assert!(bound >= v);
            assert!(
                (bound - v) as f64 <= 0.25 * v as f64,
                "bound {bound} for {v} exceeds 25% error"
            );
        }
    }

    #[test]
    fn quantiles_from_known_distribution() {
        let h = LatencyHist::new();
        for us in 1..=1000u64 {
            h.observe(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        let p999 = s.quantile(0.999);
        // Upper bucket bounds: within 25% above the exact rank value.
        assert!((500..=625).contains(&p50), "p50 = {p50}");
        assert!((990..=1250).contains(&p99), "p99 = {p99}");
        assert!(p999 >= p99, "p999 {p999} < p99 {p99}");
    }

    #[test]
    fn merge_is_order_independent_addition() {
        let a = LatencyHist::new();
        let b = LatencyHist::new();
        for v in [5u64, 50, 500] {
            a.observe(v);
        }
        for v in [7u64, 70, 700, 7000] {
            b.observe(v);
        }
        let mut ab = HistSnapshot::empty();
        ab.merge(&a.snapshot());
        ab.merge(&b.snapshot());
        let mut ba = HistSnapshot::empty();
        ba.merge(&b.snapshot());
        ba.merge(&a.snapshot());
        assert_eq!(ab.count, 7);
        assert_eq!(ab.sum, ba.sum);
        assert_eq!(ab.quantile(0.5), ba.quantile(0.5));
        assert_eq!(ab.quantile(0.99), ba.quantile(0.99));
    }

    #[test]
    fn empty_quantile_is_zero() {
        assert_eq!(HistSnapshot::empty().quantile(0.99), 0);
    }
}
