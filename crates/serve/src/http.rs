//! Minimal HTTP/1.1 framing over `std::net::TcpStream`.
//!
//! Just enough of RFC 9112 for the serving API: request-line +
//! headers + `Content-Length` bodies, keep-alive by default, no
//! chunked transfer encoding, no TLS. Reads run against the stream's
//! read timeout so idle keep-alive connections poll the server's
//! shutdown flag instead of blocking forever.

use serde_json::Value;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request line + headers (a parsing budget, not a
/// protocol limit).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// How long a *partially received* request may take to finish
/// arriving before the connection is dropped as malformed.
const PARTIAL_DEADLINE: Duration = Duration::from_secs(5);

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path component, query string included.
    pub path: String,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value matching `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body parsed as JSON.
    pub fn json(&self) -> Result<Value, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }

    /// `true` unless the client asked for `Connection: close`.
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// What a read attempt produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// Clean EOF before any request bytes — the peer closed.
    Closed,
    /// No bytes arrived within the stream's read timeout; the caller
    /// decides whether to keep waiting (idle keep-alive) or hang up.
    TimedOut,
    /// Head or body exceeded the configured limits; respond 413/431
    /// and close.
    TooLarge,
    /// Unparseable framing; respond 400 and close.
    Malformed,
}

/// One head line, with the conditions a caller must tell apart.
enum Line {
    /// A non-empty line (terminators stripped).
    Data(String),
    /// A bare CRLF (the head/body separator).
    Blank,
    /// Clean EOF with no bytes consumed.
    Eof,
    /// Read timeout with no bytes consumed.
    Idle,
    /// Torn, over-budget, or non-UTF-8 line.
    Bad,
}

/// Reads one CRLF-terminated line, retrying timeouts while a partial
/// line is pending.
fn read_line(reader: &mut BufReader<TcpStream>, budget: &mut usize) -> std::io::Result<Line> {
    let mut buf = Vec::new();
    let started = Instant::now();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => {
                // EOF. Mid-line EOF is a torn request.
                return Ok(if buf.is_empty() { Line::Eof } else { Line::Bad });
            }
            Ok(_) => break,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if buf.is_empty() {
                    return Ok(Line::Idle);
                }
                // Partial line: keep waiting, bounded.
                if started.elapsed() > PARTIAL_DEADLINE {
                    return Ok(Line::Bad);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if buf.len() > *budget {
        *budget = 0;
        return Ok(Line::Bad);
    }
    *budget -= buf.len();
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(s) if s.is_empty() => Ok(Line::Blank),
        Ok(s) => Ok(Line::Data(s)),
        Err(_) => Ok(Line::Bad),
    }
}

/// Reads the next request off the connection.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> std::io::Result<ReadOutcome> {
    let mut budget = MAX_HEAD_BYTES;
    let bad = |budget: usize| {
        Ok(if budget == 0 { ReadOutcome::TooLarge } else { ReadOutcome::Malformed })
    };
    let line = match read_line(reader, &mut budget)? {
        Line::Idle => return Ok(ReadOutcome::TimedOut),
        Line::Eof => return Ok(ReadOutcome::Closed),
        Line::Bad | Line::Blank => return bad(budget),
        Line::Data(l) => l,
    };
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_ascii_uppercase(), p.to_string())
        }
        _ => return Ok(ReadOutcome::Malformed),
    };

    // Headers. A stall between lines retries until the head deadline.
    let mut headers = Vec::new();
    let started = Instant::now();
    loop {
        match read_line(reader, &mut budget)? {
            Line::Idle => {
                if started.elapsed() > PARTIAL_DEADLINE {
                    return Ok(ReadOutcome::Malformed);
                }
            }
            Line::Eof | Line::Bad => return bad(budget),
            Line::Blank => break,
            Line::Data(l) => match l.split_once(':') {
                Some((name, value)) => {
                    // Every header line is charged against the MAX_HEAD_BYTES
                    // budget in read_line, which turns an oversized head into
                    // `Line::Bad` above.
                    // nd-lint: allow(unbounded-growth) — bounded by the head-bytes budget
                    headers.push((name.trim().to_string(), value.trim().to_string()))
                }
                None => return Ok(ReadOutcome::Malformed),
            },
        }
    }

    // Body.
    let content_length = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > max_body {
        return Ok(ReadOutcome::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    let mut read = 0;
    let started = Instant::now();
    while read < content_length {
        match reader.read(&mut body[read..]) {
            Ok(0) => return Ok(ReadOutcome::Malformed),
            Ok(n) => read += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if started.elapsed() > PARTIAL_DEADLINE {
                    return Ok(ReadOutcome::Malformed);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }

    Ok(ReadOutcome::Request(Request { method, path, headers, body }))
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response (always with `Content-Length`).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Runs `client` against a connection whose peer wrote `raw`.
    fn feed(raw: &[u8]) -> BufReader<TcpStream> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Keep the socket open briefly so reads see data, not RST.
            std::thread::sleep(Duration::from_millis(50));
        });
        let (stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(Duration::from_millis(10))).unwrap();
        BufReader::new(stream)
    }

    #[test]
    fn parses_post_with_body() {
        let mut r = feed(
            b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        );
        match read_request(&mut r, 1024).unwrap() {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/predict");
                assert_eq!(req.header("host"), Some("x"));
                assert_eq!(req.body, b"{\"a\":1}");
                assert_eq!(req.json().unwrap()["a"].as_u64(), Some(1));
                assert!(req.keep_alive());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn connection_close_detected() {
        let mut r = feed(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        match read_request(&mut r, 1024).unwrap() {
            ReadOutcome::Request(req) => assert!(!req.keep_alive()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_body_rejected() {
        let mut r = feed(b"POST /p HTTP/1.1\r\nContent-Length: 9999\r\n\r\n");
        assert!(matches!(read_request(&mut r, 100).unwrap(), ReadOutcome::TooLarge));
    }

    #[test]
    fn garbage_is_malformed() {
        let mut r = feed(b"not http at all\r\n\r\n");
        assert!(matches!(read_request(&mut r, 1024).unwrap(), ReadOutcome::Malformed));
    }

    #[test]
    fn idle_times_out_then_closed_on_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(Duration::from_millis(5))).unwrap();
        let mut r = BufReader::new(stream);
        assert!(matches!(read_request(&mut r, 1024).unwrap(), ReadOutcome::TimedOut));
        drop(client);
        assert!(matches!(read_request(&mut r, 1024).unwrap(), ReadOutcome::Closed));
    }

    #[test]
    fn response_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
            let mut raw = Vec::new();
            c.read_to_end(&mut raw).unwrap();
            String::from_utf8(raw).unwrap()
        });
        let (mut stream, _) = listener.accept().unwrap();
        // Drain the request before responding: closing a socket with
        // unread bytes in its receive buffer sends RST, not FIN, and
        // the client's read_to_end then races a ConnectionReset.
        let mut seen = Vec::new();
        let mut buf = [0u8; 64];
        while !seen.ends_with(b"\r\n\r\n") {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "client closed before finishing the request");
            seen.extend_from_slice(&buf[..n]);
        }
        write_response(
            &mut stream,
            503,
            "application/json",
            &[("Retry-After", "1".to_string())],
            b"{}",
            false,
        )
        .unwrap();
        drop(stream);
        let raw = t.join().unwrap();
        assert!(raw.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{raw}");
        assert!(raw.contains("Retry-After: 1\r\n"));
        assert!(raw.contains("Connection: close\r\n"));
        assert!(raw.ends_with("\r\n\r\n{}"));
    }
}
