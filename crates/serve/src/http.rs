//! Minimal HTTP/1.1 framing over `std::net::TcpStream`.
//!
//! Just enough of RFC 9112 for the serving API: request-line +
//! headers + `Content-Length` bodies, keep-alive by default, no
//! chunked transfer encoding, no TLS. Reads run against the stream's
//! read timeout so idle keep-alive connections poll the server's
//! shutdown flag instead of blocking forever.
//!
//! Parsing is allocation-free on the steady state: each connection
//! owns one [`ConnBufs`] whose line buffer, header strings, and body
//! vector are reused across every keep-alive request, so a hot
//! connection stops paying malloc/free per request after its first.
//! (`serve_http_keepalive_reuse` in the bench crate measures the
//! difference.) Slow clients are bounded twice over: the head must
//! fit [`MAX_HEAD_BYTES`], and a *partially received* request must
//! finish within [`ReadParams::head_deadline`] — that is what turns a
//! slow-loris connection into a clean drop instead of a parked
//! handler thread.

use serde_json::Value;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request line + headers (a parsing budget, not a
/// protocol limit).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Limits applied while reading one request.
#[derive(Debug, Clone)]
pub struct ReadParams {
    /// Largest acceptable `Content-Length`.
    pub max_body: usize,
    /// How long a *partially received* request may take to finish
    /// arriving before the connection is dropped as malformed. This
    /// is the slow-loris bound: a client trickling one header byte
    /// per read-timeout window is cut off here.
    pub head_deadline: Duration,
}

impl Default for ReadParams {
    fn default() -> Self {
        ReadParams { max_body: 1 << 20, head_deadline: Duration::from_secs(5) }
    }
}

/// Per-connection reusable parse state. The parsed request's fields
/// live here between reads; accessors expose them borrowed, so the
/// steady-state request path performs no allocation.
#[derive(Debug, Default)]
pub struct ConnBufs {
    line: Vec<u8>,
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    n_headers: usize,
    body: Vec<u8>,
}

impl ConnBufs {
    /// Fresh buffers for a new connection.
    pub fn new() -> ConnBufs {
        ConnBufs::default()
    }

    /// Uppercase method (`GET`, `POST`, …) of the last request read.
    pub fn method(&self) -> &str {
        &self.method
    }

    /// Path (query string included) of the last request read.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Raw body bytes of the last request read.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Header name/value pairs of the last request read, in arrival
    /// order. Entries past `n_headers` are spare capacity from earlier
    /// requests and are not exposed.
    pub fn headers(&self) -> &[(String, String)] {
        self.headers.get(..self.n_headers).unwrap_or(&[])
    }

    /// First header value matching `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers()
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body parsed as JSON.
    pub fn json(&self) -> Result<Value, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }

    /// `true` unless the client asked for `Connection: close`.
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Stores a header into the reusable slots, recycling the `String`
/// allocations left over from previous requests on this connection.
fn push_header(
    headers: &mut Vec<(String, String)>,
    n_headers: &mut usize,
    name: &str,
    value: &str,
) {
    if let Some((n, v)) = headers.get_mut(*n_headers) {
        n.clear();
        n.push_str(name);
        v.clear();
        v.push_str(value);
    } else {
        headers.push((name.to_string(), value.to_string()));
    }
    *n_headers += 1;
}

/// What a read attempt produced. On `Ready` the request's fields are
/// in the [`ConnBufs`] passed to [`read_request`].
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request was parsed into the connection's buffers.
    Ready,
    /// Clean EOF before any request bytes — the peer closed.
    Closed,
    /// No bytes arrived within the stream's read timeout; the caller
    /// decides whether to keep waiting (idle keep-alive) or hang up.
    TimedOut,
    /// Head or body exceeded the configured limits; respond 413/431
    /// and close.
    TooLarge,
    /// Unparseable framing, or a partial request that outlived the
    /// head deadline (slow loris); respond 400 and close.
    Malformed,
}

/// One head line, with the conditions a caller must tell apart.
enum Line {
    /// A non-empty line, left in the caller's buffer (terminators
    /// stripped, UTF-8 checked).
    Data,
    /// A bare CRLF (the head/body separator).
    Blank,
    /// Clean EOF with no bytes consumed.
    Eof,
    /// Read timeout with no bytes consumed.
    Idle,
    /// Torn, over-budget, non-UTF-8, or slow-loris line.
    Bad,
}

/// Reads one CRLF-terminated line into `buf` (reused across calls),
/// retrying timeouts while a partial line is pending, up to
/// `deadline`.
fn read_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    budget: &mut usize,
    deadline: Duration,
) -> std::io::Result<Line> {
    buf.clear();
    let started = Instant::now();
    loop {
        match reader.read_until(b'\n', buf) {
            Ok(0) => {
                // EOF. Mid-line EOF is a torn request.
                return Ok(if buf.is_empty() { Line::Eof } else { Line::Bad });
            }
            Ok(_) => break,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if buf.is_empty() {
                    return Ok(Line::Idle);
                }
                // Partial line: keep waiting, bounded.
                if started.elapsed() > deadline {
                    return Ok(Line::Bad);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if buf.len() > *budget {
        *budget = 0;
        return Ok(Line::Bad);
    }
    *budget -= buf.len();
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    if std::str::from_utf8(buf).is_err() {
        return Ok(Line::Bad);
    }
    Ok(if buf.is_empty() { Line::Blank } else { Line::Data })
}

/// Reads the next request off the connection into `bufs`.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    bufs: &mut ConnBufs,
    params: &ReadParams,
) -> std::io::Result<ReadOutcome> {
    let mut budget = MAX_HEAD_BYTES;
    let bad = |budget: usize| {
        Ok(if budget == 0 { ReadOutcome::TooLarge } else { ReadOutcome::Malformed })
    };
    bufs.n_headers = 0;
    bufs.method.clear();
    bufs.path.clear();
    bufs.body.clear();

    match read_line(reader, &mut bufs.line, &mut budget, params.head_deadline)? {
        Line::Idle => return Ok(ReadOutcome::TimedOut),
        Line::Eof => return Ok(ReadOutcome::Closed),
        Line::Bad | Line::Blank => return bad(budget),
        Line::Data => {}
    }
    {
        // `line` was UTF-8 checked in read_line.
        let text = std::str::from_utf8(&bufs.line).unwrap_or("");
        let mut parts = text.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => {
                bufs.method.push_str(m);
                bufs.path.push_str(p);
            }
            _ => return Ok(ReadOutcome::Malformed),
        }
        bufs.method.make_ascii_uppercase();
    }

    // Headers. A stall between lines retries until the head deadline.
    let started = Instant::now();
    loop {
        match read_line(reader, &mut bufs.line, &mut budget, params.head_deadline)? {
            Line::Idle => {
                if started.elapsed() > params.head_deadline {
                    return Ok(ReadOutcome::Malformed);
                }
            }
            Line::Eof | Line::Bad => return bad(budget),
            Line::Blank => break,
            Line::Data => {
                let text = std::str::from_utf8(&bufs.line).unwrap_or("");
                match text.split_once(':') {
                    // Header count is bounded by the MAX_HEAD_BYTES
                    // budget charged per line in read_line, which turns
                    // an oversized head into `Line::Bad` above.
                    Some((name, value)) => push_header(
                        &mut bufs.headers,
                        &mut bufs.n_headers,
                        name.trim(),
                        value.trim(),
                    ),
                    None => return Ok(ReadOutcome::Malformed),
                }
            }
        }
    }

    // Body, into the reused vector.
    let content_length = bufs
        .headers()
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > params.max_body {
        return Ok(ReadOutcome::TooLarge);
    }
    bufs.body.resize(content_length, 0);
    let mut read = 0;
    let started = Instant::now();
    while read < content_length {
        match reader.read(&mut bufs.body[read..]) {
            Ok(0) => return Ok(ReadOutcome::Malformed),
            Ok(n) => read += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if started.elapsed() > params.head_deadline {
                    return Ok(ReadOutcome::Malformed);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }

    Ok(ReadOutcome::Ready)
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response (always with `Content-Length`),
/// building the head in `scratch` so keep-alive handlers reuse one
/// allocation across every response on the connection.
pub fn write_response_with(
    stream: &mut TcpStream,
    scratch: &mut String,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    scratch.clear();
    // Writing to a String cannot fail.
    // nd-lint: allow(result-dropped) — fmt::Write to String is infallible
    let _ = write!(
        scratch,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        scratch.push_str(name);
        scratch.push_str(": ");
        scratch.push_str(value);
        scratch.push_str("\r\n");
    }
    scratch.push_str("\r\n");
    stream.write_all(scratch.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// [`write_response_with`] with a throwaway head buffer — for one-shot
/// responses where reuse does not matter.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut scratch = String::new();
    write_response_with(stream, &mut scratch, status, content_type, extra_headers, body, keep_alive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Runs `client` against a connection whose peer wrote `raw`.
    fn feed(raw: &[u8]) -> BufReader<TcpStream> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Keep the socket open briefly so reads see data, not RST.
            std::thread::sleep(Duration::from_millis(50));
        });
        let (stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(Duration::from_millis(10))).unwrap();
        BufReader::new(stream)
    }

    fn params() -> ReadParams {
        ReadParams { max_body: 1024, ..ReadParams::default() }
    }

    #[test]
    fn parses_post_with_body() {
        let mut r = feed(
            b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        );
        let mut bufs = ConnBufs::new();
        match read_request(&mut r, &mut bufs, &params()).unwrap() {
            ReadOutcome::Ready => {
                assert_eq!(bufs.method(), "POST");
                assert_eq!(bufs.path(), "/predict");
                assert_eq!(bufs.header("host"), Some("x"));
                assert_eq!(bufs.body(), b"{\"a\":1}");
                assert_eq!(bufs.json().unwrap()["a"].as_u64(), Some(1));
                assert!(bufs.keep_alive());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn buffers_reused_across_keepalive_requests() {
        let one = b"POST /a HTTP/1.1\r\nHost: x\r\nContent-Length: 3\r\n\r\nabc";
        let two = b"GET /b HTTP/1.1\r\nAccept: y\r\n\r\n";
        let raw: Vec<u8> = one.iter().chain(two.iter()).copied().collect();
        let mut r = feed(&raw);
        let mut bufs = ConnBufs::new();
        assert!(matches!(
            read_request(&mut r, &mut bufs, &params()).unwrap(),
            ReadOutcome::Ready
        ));
        assert_eq!(bufs.path(), "/a");
        assert_eq!(bufs.headers().len(), 2);
        assert_eq!(bufs.body(), b"abc");
        let header_cap = bufs.headers.capacity();
        assert!(matches!(
            read_request(&mut r, &mut bufs, &params()).unwrap(),
            ReadOutcome::Ready
        ));
        // Second request fully replaces the first's view...
        assert_eq!(bufs.method(), "GET");
        assert_eq!(bufs.path(), "/b");
        assert_eq!(bufs.headers().len(), 1);
        assert_eq!(bufs.header("accept"), Some("y"));
        assert_eq!(bufs.header("host"), None, "stale headers must not leak");
        assert!(bufs.body().is_empty());
        // ...while reusing the header slot allocations.
        assert_eq!(bufs.headers.capacity(), header_cap);
        assert_eq!(bufs.headers.len(), 2, "spare slot kept for recycling");
    }

    #[test]
    fn connection_close_detected() {
        let mut r = feed(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        let mut bufs = ConnBufs::new();
        match read_request(&mut r, &mut bufs, &params()).unwrap() {
            ReadOutcome::Ready => assert!(!bufs.keep_alive()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_body_rejected() {
        let mut r = feed(b"POST /p HTTP/1.1\r\nContent-Length: 9999\r\n\r\n");
        let mut bufs = ConnBufs::new();
        let p = ReadParams { max_body: 100, ..ReadParams::default() };
        assert!(matches!(read_request(&mut r, &mut bufs, &p).unwrap(), ReadOutcome::TooLarge));
    }

    #[test]
    fn header_flood_hits_head_budget() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..2000 {
            raw.extend_from_slice(format!("X-Flood-{i}: {}\r\n", "v".repeat(64)).as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let mut r = feed(&raw);
        let mut bufs = ConnBufs::new();
        assert!(matches!(
            read_request(&mut r, &mut bufs, &params()).unwrap(),
            ReadOutcome::TooLarge
        ));
    }

    #[test]
    fn slow_loris_cut_off_at_head_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Trickle a request forever, one fragment per 20ms.
            for _ in 0..50 {
                if s.write_all(b"X").is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let (stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(Duration::from_millis(10))).unwrap();
        let mut r = BufReader::new(stream);
        let mut bufs = ConnBufs::new();
        let p = ReadParams { max_body: 1024, head_deadline: Duration::from_millis(100) };
        let started = Instant::now();
        assert!(matches!(
            read_request(&mut r, &mut bufs, &p).unwrap(),
            ReadOutcome::Malformed
        ));
        assert!(started.elapsed() < Duration::from_secs(1), "cut off near the deadline");
        drop(r);
        t.join().unwrap();
    }

    #[test]
    fn garbage_is_malformed() {
        let mut r = feed(b"not http at all\r\n\r\n");
        let mut bufs = ConnBufs::new();
        assert!(matches!(
            read_request(&mut r, &mut bufs, &params()).unwrap(),
            ReadOutcome::Malformed
        ));
    }

    #[test]
    fn idle_times_out_then_closed_on_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(Duration::from_millis(5))).unwrap();
        let mut r = BufReader::new(stream);
        let mut bufs = ConnBufs::new();
        assert!(matches!(
            read_request(&mut r, &mut bufs, &params()).unwrap(),
            ReadOutcome::TimedOut
        ));
        drop(client);
        assert!(matches!(
            read_request(&mut r, &mut bufs, &params()).unwrap(),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn response_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
            let mut raw = Vec::new();
            c.read_to_end(&mut raw).unwrap();
            String::from_utf8(raw).unwrap()
        });
        let (mut stream, _) = listener.accept().unwrap();
        // Drain the request before responding: closing a socket with
        // unread bytes in its receive buffer sends RST, not FIN, and
        // the client's read_to_end then races a ConnectionReset.
        let mut seen = Vec::new();
        let mut buf = [0u8; 64];
        while !seen.ends_with(b"\r\n\r\n") {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "client closed before finishing the request");
            seen.extend_from_slice(&buf[..n]);
        }
        let mut scratch = String::new();
        write_response_with(
            &mut stream,
            &mut scratch,
            503,
            "application/json",
            &[("Retry-After", "2".to_string())],
            b"{}",
            false,
        )
        .unwrap();
        drop(stream);
        let raw = t.join().unwrap();
        assert!(raw.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{raw}");
        assert!(raw.contains("Retry-After: 2\r\n"));
        assert!(raw.contains("Connection: close\r\n"));
        assert!(raw.ends_with("\r\n\r\n{}"));
    }
}
