//! Online audience-interest prediction service.
//!
//! The paper's deployed system retrains every two hours as new
//! social-media reactions arrive and serves interest predictions for
//! incoming news topics continuously. `nd-serve` is that serving
//! tier: a dependency-free HTTP/1.1 server over
//! [`std::net::TcpListener`] that loads trained checkpoints from the
//! embedded `nd-store` database and answers `POST /predict` with the
//! exact scores an offline [`nd_neural::Network::predict_batch`] call
//! would produce.
//!
//! Layout, front to back:
//!
//! - [`http`] — minimal HTTP/1.1 framing (request parsing, response
//!   writing, keep-alive, read-timeout polling, per-connection buffer
//!   reuse, slow-loris head deadlines).
//! - [`server`] — the listener: shard-affine connection pools,
//!   routing, validation, graceful shutdown, the background
//!   checkpoint refresher.
//! - [`shard`] — consistent-hash partitioning of models across
//!   independent worker groups, each with its own batcher, cache, and
//!   admission queue; drain-rate-derived `Retry-After`.
//! - [`cache`] — LRU over exact feature-vector bit patterns; repeat
//!   queries for trending topics skip the network entirely.
//! - [`batcher`] — micro-batching: concurrent requests coalesce into
//!   one forward pass, bounded queues shed overload as `503`.
//! - [`registry`] — versioned models behind swappable [`std::sync::Arc`]
//!   handles; hot swap never tears an in-flight request.
//! - [`metrics`] — lock-free counters/histograms for `GET /metrics`.
//! - [`hist`] — log-linear latency histograms behind the p50/p99/p999
//!   quantile series, mergeable across shards.
//! - [`retrain`] — reload-with-retrain: re-run the staged pipeline
//!   from a cached run directory, refit the served models, hot-swap.
//! - [`stream`] — the per-slice refresh loop: fold the next firehose
//!   slice through the incremental DAG (cached prefix replays from
//!   disk), refit on the new head state, hot-swap.
//! - [`client`] — a small blocking client used by the tests, the
//!   demo, and the load generator.
//! - [`loadgen`] — deterministic closed/open-loop load generation and
//!   adversarial probes for the SLO harness.
//!
//! # Endpoints
//!
//! | Route                | Purpose                                    |
//! |----------------------|--------------------------------------------|
//! | `POST /predict`      | Single (`features`) or batch (`rows`)      |
//! | `GET /models`        | Serving versions and parameter counts      |
//! | `GET /healthz`       | Liveness                                   |
//! | `GET /metrics`       | Prometheus-style exposition text           |
//! | `POST /admin/reload` | Checkpoint refresh + hot swap; with a `run_dir` body, retrain from that cached pipeline run first |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod client;
pub mod hist;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod registry;
pub mod retrain;
pub mod server;
pub mod shard;
pub mod stream;

pub use batcher::{BatchConfig, Batcher, SubmitError};
pub use cache::LruCache;
pub use client::{Client, Response};
pub use hist::{HistSnapshot, LatencyHist};
pub use loadgen::{BurstProfile, LoadSummary, TrafficMix};
pub use metrics::{Endpoint, Metrics};
pub use registry::{ModelHandle, ModelSpec, Registry, SwapEvent};
pub use retrain::{retrain_from_run, RetrainModel, RetrainSpec};
pub use server::{ServeConfig, Server};
pub use shard::{Shard, ShardConfig, ShardSet};
pub use stream::{SliceRetrain, StreamRetrainSpec, StreamRetrainer};

/// Errors surfaced while configuring or running the service.
#[derive(Debug)]
pub enum ServeError {
    /// Bad configuration (no specs, missing checkpoints, bad bind
    /// address).
    Config(String),
    /// The backing document store failed.
    Store(nd_store::StoreError),
    /// Checkpoint load/prune failed.
    Core(nd_core::CoreError),
    /// Socket-level failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "config error: {msg}"),
            ServeError::Store(e) => write!(f, "store error: {e}"),
            ServeError::Core(e) => write!(f, "checkpoint error: {e}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<nd_store::StoreError> for ServeError {
    fn from(e: nd_store::StoreError) -> Self {
        ServeError::Store(e)
    }
}

impl From<nd_core::CoreError> for ServeError {
    fn from(e: nd_core::CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
