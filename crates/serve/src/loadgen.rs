//! Deterministic load generation against a running server.
//!
//! Built as a library module (not just example code) so the SLO bench
//! harness, the `loadgen` example, and the tests all drive identical
//! traffic — and so the generator itself is held to the serving
//! crate's lint bar (no panic paths, bounded growth).
//!
//! Two driving disciplines:
//!
//! - [`closed_loop`]: N clients, each firing its next request the
//!   moment the previous response lands. Measures sustainable
//!   throughput at a fixed concurrency.
//! - [`open_loop`]: requests fire on a precomputed Poisson arrival
//!   schedule regardless of response progress, with optional
//!   [`BurstProfile`] rate spikes. Latency is measured from the
//!   *scheduled* arrival, not the actual send, so queueing delay from
//!   a stalled server is charged to the server (no coordinated
//!   omission).
//!
//! Traffic shape comes from [`TrafficMix`]: a Zipf-skewed model
//! popularity curve (hot-model skew), optional cache-busting (every
//! row unique, forcing real forward passes), or a small recycled row
//! pool (cache-friendly). All randomness is a seeded xorshift64*, so
//! two runs with the same seed produce the same request sequence.
//!
//! [`slow_loris`] is the adversarial client: connections that trickle
//! bytes forever, verifying the server cuts them off at its head
//! deadline without stalling real traffic.

use crate::client::Client;
use crate::metrics::Metrics;
use crate::registry::{ModelSpec, Registry};
use crate::server::{ServeConfig, Server};
use crate::ServeError;
use serde_json::{json, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

/// Deterministic xorshift64* generator — load patterns must replay
/// identically for a given seed.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator (`0` is remapped — xorshift fixpoint).
    pub fn new(seed: u64) -> Rng {
        Rng(if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`; returns 0 for `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }
}

/// What the generated requests look like.
#[derive(Debug, Clone)]
pub struct TrafficMix {
    /// Model names to spread load over.
    pub models: Vec<String>,
    /// Zipf exponent for model popularity (`0` = uniform; `~1.2` =
    /// strong hot-model skew).
    pub skew: f64,
    /// Feature vector width.
    pub dim: usize,
    /// When `true` every row is unique — a cache-busting flood that
    /// forces a forward pass per row.
    pub cache_bust: bool,
    /// Rows per `/predict` request.
    pub batch_rows: usize,
    /// Size of the recycled row pool when not cache-busting.
    pub row_pool: usize,
}

impl TrafficMix {
    /// The headline mix: strong hot-model skew, unique rows, single-
    /// row requests — the worst case for a global FIFO batcher and the
    /// case sharding is built for.
    pub fn hot_skew(models: Vec<String>, dim: usize) -> TrafficMix {
        TrafficMix { models, skew: 1.2, dim, cache_bust: true, batch_rows: 1, row_pool: 512 }
    }

    /// Cache-friendly variant: rows recycle through a small pool.
    pub fn cache_friendly(models: Vec<String>, dim: usize) -> TrafficMix {
        TrafficMix { models, skew: 1.2, dim, cache_bust: false, batch_rows: 1, row_pool: 64 }
    }

    /// Cumulative Zipf weights over the model list.
    fn weights(&self) -> Vec<f64> {
        let mut cum = Vec::with_capacity(self.models.len());
        let mut total = 0.0;
        for i in 0..self.models.len() {
            total += 1.0 / ((i + 1) as f64).powf(self.skew);
            cum.push(total);
        }
        cum
    }

    /// Picks a model index by skewed popularity.
    fn pick_model(&self, cum: &[f64], rng: &mut Rng) -> usize {
        let Some(&total) = cum.last() else { return 0 };
        let r = rng.next_f64() * total;
        cum.partition_point(|&w| w < r).min(self.models.len().saturating_sub(1))
    }

    /// Builds one request body.
    fn make_body(&self, cum: &[f64], rng: &mut Rng) -> Value {
        let model = self.models.get(self.pick_model(cum, rng)).cloned().unwrap_or_default();
        let rows: Vec<Vec<f64>> = (0..self.batch_rows.max(1))
            .map(|_| {
                if self.cache_bust {
                    (0..self.dim).map(|_| rng.next_f64()).collect()
                } else {
                    // Recycle rows from a small deterministic pool so
                    // repeats hit the prediction cache.
                    let k = rng.below(self.row_pool.max(1)) as f64;
                    (0..self.dim).map(|j| ((k + j as f64) % 17.0) * 0.1).collect()
                }
            })
            .collect();
        json!({"model": model, "rows": rows})
    }
}

/// Aggregated result of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadSummary {
    /// Requests attempted.
    pub sent: u64,
    /// 200 responses.
    pub ok: u64,
    /// 503 responses (shed by admission control).
    pub shed: u64,
    /// Transport failures and non-200/503 statuses.
    pub errors: u64,
    /// Open-loop only: requests whose send started >10ms behind their
    /// scheduled arrival (the generator, not the server, fell behind).
    pub late: u64,
    /// Wall-clock time of the whole run, milliseconds.
    pub wall_ms: u64,
    /// Successful requests per second over the run.
    pub rps: f64,
    /// Latency percentiles over successful requests, microseconds.
    pub p50_us: u64,
    /// 99th percentile latency (µs).
    pub p99_us: u64,
    /// 99.9th percentile latency (µs).
    pub p999_us: u64,
    /// Worst observed latency (µs).
    pub max_us: u64,
    /// Mean latency (µs).
    pub mean_us: u64,
}

impl LoadSummary {
    /// JSON rendering for `--json` output and BENCH files.
    pub fn to_json(&self) -> Value {
        json!({
            "sent": self.sent,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "late": self.late,
            "wall_ms": self.wall_ms,
            "rps": self.rps,
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "p999_us": self.p999_us,
            "max_us": self.max_us,
            "mean_us": self.mean_us,
        })
    }
}

/// Exact nearest-rank percentile over an already-sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted.get(rank - 1).copied().unwrap_or(0)
}

fn summarize(
    mut latencies: Vec<u64>,
    sent: u64,
    ok: u64,
    shed: u64,
    errors: u64,
    late: u64,
    wall: Duration,
) -> LoadSummary {
    latencies.sort_unstable();
    let sum: u64 = latencies.iter().sum();
    let wall_s = wall.as_secs_f64().max(1e-9);
    LoadSummary {
        sent,
        ok,
        shed,
        errors,
        late,
        wall_ms: wall.as_millis().min(u64::MAX as u128) as u64,
        rps: ok as f64 / wall_s,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
        max_us: latencies.last().copied().unwrap_or(0),
        mean_us: if latencies.is_empty() { 0 } else { sum / latencies.len() as u64 },
    }
}

/// Per-thread tally merged into the final summary.
#[derive(Debug, Default)]
struct Tally {
    latencies: Vec<u64>,
    sent: u64,
    ok: u64,
    shed: u64,
    errors: u64,
    late: u64,
}

impl Tally {
    fn record(&mut self, status: Option<u16>, us: u64) {
        self.sent += 1;
        match status {
            Some(200) => {
                self.ok += 1;
                self.latencies.push(us);
            }
            Some(503) => self.shed += 1,
            _ => self.errors += 1,
        }
    }
}

/// Closed-loop run: `clients` keep-alive connections, each sending
/// `requests` back-to-back requests. Deterministic per seed.
pub fn closed_loop(
    addr: SocketAddr,
    clients: usize,
    requests: usize,
    mix: &TrafficMix,
    seed: u64,
) -> LoadSummary {
    let started = Instant::now();
    let workers: Vec<_> = (0..clients.max(1))
        .map(|c| {
            let mix = mix.clone();
            let mut rng = Rng::new(seed ^ ((c as u64 + 1) << 32));
            std::thread::spawn(move || {
                let cum = mix.weights();
                let mut tally = Tally::default();
                let Ok(mut client) = Client::connect(addr) else {
                    tally.sent = requests as u64;
                    tally.errors = requests as u64;
                    return tally;
                };
                for _ in 0..requests {
                    let body = mix.make_body(&cum, &mut rng);
                    let t0 = Instant::now();
                    let status = client.post_json("/predict", &body).ok().map(|r| r.status);
                    let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    tally.record(status, us);
                    // A transport error kills the connection; reconnect
                    // so one hiccup doesn't void the remaining plan.
                    if status.is_none() {
                        // nd-lint: allow(result-dropped) — a failed reconnect is counted as an error by the next request's `record(None, …)`
                        if let Ok(fresh) = Client::connect(addr) {
                            client = fresh;
                        }
                    }
                }
                tally
            })
        })
        .collect();
    collect(workers, started)
}

/// Rate spikes layered onto the open-loop schedule: for the first
/// `burst_len` of every `period`, the arrival rate is multiplied.
#[derive(Debug, Clone)]
pub struct BurstProfile {
    /// Burst cycle length.
    pub period: Duration,
    /// Burst duration at the start of each cycle.
    pub burst_len: Duration,
    /// Rate multiplier inside the burst.
    pub multiplier: f64,
}

/// Open-loop run: Poisson arrivals at `rps` (optionally bursty) for
/// `duration`, spread over `senders` connections. Latency is charged
/// from the scheduled arrival time.
pub fn open_loop(
    addr: SocketAddr,
    rps: f64,
    duration: Duration,
    senders: usize,
    mix: &TrafficMix,
    seed: u64,
    burst: Option<&BurstProfile>,
) -> LoadSummary {
    // Precompute the full arrival schedule so sender threads do no
    // arithmetic (or allocation) on the timing path.
    let mut arrivals: Vec<Duration> = Vec::new();
    let mut rng = Rng::new(seed);
    let mut t = Duration::ZERO;
    while t < duration {
        let rate = match burst {
            Some(b) if !b.period.is_zero() => {
                let phase = Duration::from_nanos(
                    (t.as_nanos() % b.period.as_nanos().max(1)) as u64,
                );
                if phase < b.burst_len {
                    rps * b.multiplier
                } else {
                    rps
                }
            }
            _ => rps,
        };
        let rate = rate.max(1e-3);
        // Exponential inter-arrival: -ln(U)/rate.
        let u = rng.next_f64().max(1e-12);
        t += Duration::from_secs_f64((-u.ln()) / rate);
        // nd-lint: allow(unbounded-growth) — capped by the duration cutoff in the loop condition
        arrivals.push(t);
    }

    let senders = senders.max(1);
    let started = Instant::now();
    let workers: Vec<_> = (0..senders)
        .map(|s| {
            let mix = mix.clone();
            let mut rng = Rng::new(seed ^ ((s as u64 + 1) << 40));
            // Strided split of the shared schedule.
            let mine: Vec<Duration> =
                arrivals.iter().skip(s).step_by(senders).copied().collect();
            std::thread::spawn(move || {
                let cum = mix.weights();
                let mut tally = Tally::default();
                let Ok(mut client) = Client::connect(addr) else {
                    tally.sent = mine.len() as u64;
                    tally.errors = mine.len() as u64;
                    return tally;
                };
                let t0 = Instant::now();
                for at in mine {
                    let now = t0.elapsed();
                    if now < at {
                        std::thread::sleep(at - now);
                    } else if now > at + Duration::from_millis(10) {
                        tally.late += 1;
                    }
                    let body = mix.make_body(&cum, &mut rng);
                    let status = client.post_json("/predict", &body).ok().map(|r| r.status);
                    // Charge from the scheduled arrival: a server that
                    // stalls the previous response pays for the delay
                    // it imposed on this one.
                    let us = t0
                        .elapsed()
                        .saturating_sub(at)
                        .as_micros()
                        .min(u64::MAX as u128) as u64;
                    tally.record(status, us);
                    if status.is_none() {
                        // nd-lint: allow(result-dropped) — a failed reconnect is counted as an error by the next request's `record(None, …)`
                        if let Ok(fresh) = Client::connect(addr) {
                            client = fresh;
                        }
                    }
                }
                tally
            })
        })
        .collect();
    collect(workers, started)
}

fn collect(workers: Vec<std::thread::JoinHandle<Tally>>, started: Instant) -> LoadSummary {
    let mut latencies = Vec::new();
    let (mut sent, mut ok, mut shed, mut errors, mut late) = (0, 0, 0, 0, 0);
    for worker in workers {
        if let Ok(tally) = worker.join() {
            latencies.extend(tally.latencies);
            sent += tally.sent;
            ok += tally.ok;
            shed += tally.shed;
            errors += tally.errors;
            late += tally.late;
        }
    }
    summarize(latencies, sent, ok, shed, errors, late, started.elapsed())
}

/// Result of a slow-loris probe.
#[derive(Debug, Clone, Copy)]
pub struct LorisSummary {
    /// Connections successfully opened.
    pub opened: usize,
    /// Connections the server cut off (response-then-close or reset)
    /// within the observation window.
    pub dropped: usize,
}

/// Opens `conns` connections that trickle one header byte at a time,
/// then reports how many the server dropped within `hold`. A healthy
/// server drops all of them shortly after its head deadline.
pub fn slow_loris(addr: SocketAddr, conns: usize, hold: Duration) -> LorisSummary {
    let mut streams: Vec<Option<TcpStream>> = Vec::with_capacity(conns);
    for _ in 0..conns {
        let stream = TcpStream::connect(addr).ok().and_then(|s| {
            s.set_read_timeout(Some(Duration::from_millis(25))).ok()?;
            s.set_write_timeout(Some(Duration::from_millis(250))).ok()?;
            Some(s)
        });
        streams.push(stream);
    }
    let opened = streams.iter().filter(|s| s.is_some()).count();
    let started = Instant::now();
    // Trickle: a fragment of a request line every 50ms, never
    // finishing the head.
    while started.elapsed() < hold {
        for slot in streams.iter_mut() {
            let dead = match slot {
                Some(stream) => stream.write_all(b"G").is_err(),
                None => false,
            };
            if dead {
                *slot = None;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    // Final sweep: a connection still writable may have an unread
    // error response + FIN queued; a read distinguishes alive (timeout)
    // from dropped (EOF, data-then-EOF, or reset).
    let mut alive = 0;
    for stream in streams.iter_mut().flatten() {
        let mut scratch = [0u8; 256];
        match stream.read(&mut scratch) {
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                alive += 1;
            }
            // EOF, an error reply, or a reset all mean the server
            // ended this connection.
            _ => {}
        }
    }
    LorisSummary { opened, dropped: opened.saturating_sub(alive) }
}

/// Boots a disposable server over `n_models` freshly checkpointed
/// MLPs (named `m0..m{n-1}`, input width `dim`) in `dir`. Shared by
/// the loadgen example, the SLO bench, and the tests so they all
/// measure the same fixture.
pub fn boot_fixture(
    dir: &Path,
    n_models: usize,
    dim: usize,
    config: ServeConfig,
) -> Result<Server, ServeError> {
    use nd_core::checkpoint::save_checkpoint;
    use nd_core::predict::build_mlp;
    let mut db = nd_store::Database::open(dir)?;
    let mut specs = Vec::with_capacity(n_models);
    for i in 0..n_models {
        let name = format!("m{i}");
        save_checkpoint(&mut db, &name, &build_mlp(dim, 1000 + i as u64))?;
        specs.push(ModelSpec::new(&name, dim, move || build_mlp(dim, 0)));
    }
    drop(db);
    let registry = Registry::load(dir, specs, 2)?;
    Server::start(config, registry)
}

/// Model name list for an `n_models` fixture.
pub fn fixture_models(n_models: usize) -> Vec<String> {
    (0..n_models).map(|i| format!("m{i}")).collect()
}

/// Convenience: aggregate counters a smoke run asserts against.
pub fn metrics_of(server: &Server) -> std::sync::Arc<Metrics> {
    server.metrics()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let f = a.next_f64();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn zipf_pick_is_skewed_toward_head() {
        let mix = TrafficMix::hot_skew(fixture_models(8), 4);
        let cum = mix.weights();
        let mut rng = Rng::new(7);
        let mut counts = vec![0usize; 8];
        for _ in 0..4000 {
            counts[mix.pick_model(&cum, &mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[7] * 3,
            "head model must dominate tail: {counts:?}"
        );
        assert!(counts.iter().all(|&c| c > 0), "tail still sampled: {counts:?}");
    }

    #[test]
    fn bodies_are_deterministic_per_seed() {
        let mix = TrafficMix::hot_skew(fixture_models(4), 6);
        let cum = mix.weights();
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        for _ in 0..20 {
            assert_eq!(mix.make_body(&cum, &mut a), mix.make_body(&cum, &mut b));
        }
    }

    #[test]
    fn cache_friendly_rows_recycle() {
        let mix = TrafficMix::cache_friendly(fixture_models(2), 4);
        let cum = mix.weights();
        let mut rng = Rng::new(9);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let body = mix.make_body(&cum, &mut rng);
            seen.insert(body["rows"].to_string());
        }
        assert!(seen.len() <= mix.row_pool, "rows recycle through the pool");
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn summary_math() {
        let s = summarize(
            vec![100, 200, 300, 400],
            6,
            4,
            1,
            1,
            0,
            Duration::from_secs(2),
        );
        assert_eq!(s.ok, 4);
        assert_eq!(s.shed, 1);
        assert_eq!(s.errors, 1);
        assert!((s.rps - 2.0).abs() < 1e-9);
        assert_eq!(s.mean_us, 250);
        assert_eq!(s.max_us, 400);
        let j = s.to_json();
        assert_eq!(j["ok"].as_u64(), Some(4));
    }
}
