//! Service metrics: lock-free counters and log-scale histograms,
//! rendered at `GET /metrics` in a Prometheus-style text format.
//!
//! Everything is `AtomicU64` with relaxed ordering — metrics are
//! advisory and must never contend with the request path.

use crate::hist::{HistSnapshot, LatencyHist};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram (cumulative `le` buckets, like
/// Prometheus).
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: Vec<AtomicU64>, // one per bound, plus +Inf
    sum: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    /// Creates a histogram over ascending `bounds`.
    pub fn new(bounds: &'static [u64]) -> Self {
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram { bounds, counts, sum: AtomicU64::new(0), total: AtomicU64::new(0) }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx =
            self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn render(&self, out: &mut String, name: &str) {
        let mut cumulative = 0;
        for (i, bound) in self.bounds.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        cumulative += self.counts[self.bounds.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", self.sum());
        let _ = writeln!(out, "{name}_count {}", self.count());
    }
}

/// The service endpoints tracked per-endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /predict`.
    Predict,
    /// `GET /models`.
    Models,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// `POST /admin/reload`.
    Reload,
    /// `GET /patterns`.
    Patterns,
    /// Anything else (404/405 traffic).
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 7] = [
        Endpoint::Predict,
        Endpoint::Models,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Reload,
        Endpoint::Patterns,
        Endpoint::Other,
    ];

    /// The `endpoint="…"` label value used on `/metrics`.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Predict => "predict",
            Endpoint::Models => "models",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Reload => "reload",
            Endpoint::Patterns => "patterns",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        Endpoint::ALL.iter().position(|&e| e == self).unwrap_or(6)
    }
}

/// Request latency buckets (microseconds).
const LATENCY_BOUNDS: &[u64] =
    &[50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 500_000];

/// Micro-batch fill buckets (rows per forward pass).
const BATCH_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];

/// All metrics for one server instance.
#[derive(Debug)]
pub struct Metrics {
    /// Requests received, per endpoint.
    requests: [Counter; 7],
    /// Errors (4xx/5xx) returned, per endpoint.
    errors: [Counter; 7],
    /// 503s returned because the admission queue was full.
    pub overload_rejections: Counter,
    /// Feature rows predicted (cache hits included).
    pub predictions: Counter,
    /// Forward passes run by the micro-batcher.
    pub batches: Counter,
    /// Prediction-cache hits.
    pub cache_hits: Counter,
    /// Prediction-cache misses.
    pub cache_misses: Counter,
    /// Completed hot model swaps.
    pub model_swaps: Counter,
    /// Checkpoints pruned after swaps.
    pub checkpoints_pruned: Counter,
    /// `/predict` end-to-end latency (µs).
    pub predict_latency_us: Histogram,
    /// Rows per forward pass.
    pub batch_rows: Histogram,
    /// Per-endpoint latency (µs) on the fine log-linear grid, for the
    /// p50/p99/p999 quantile series.
    endpoint_latency: [LatencyHist; 7],
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests: Default::default(),
            errors: Default::default(),
            overload_rejections: Counter::default(),
            predictions: Counter::default(),
            batches: Counter::default(),
            cache_hits: Counter::default(),
            cache_misses: Counter::default(),
            model_swaps: Counter::default(),
            checkpoints_pruned: Counter::default(),
            predict_latency_us: Histogram::new(LATENCY_BOUNDS),
            batch_rows: Histogram::new(BATCH_BOUNDS),
            endpoint_latency: std::array::from_fn(|_| LatencyHist::new()),
        }
    }
}

impl Metrics {
    /// Records an arrived request.
    pub fn request(&self, endpoint: Endpoint) {
        self.requests[endpoint.index()].inc();
    }

    /// Records a non-2xx response.
    pub fn error(&self, endpoint: Endpoint) {
        self.errors[endpoint.index()].inc();
    }

    /// Requests seen on `endpoint`.
    pub fn requests_for(&self, endpoint: Endpoint) -> u64 {
        self.requests[endpoint.index()].get()
    }

    /// Records one end-to-end latency observation for `endpoint`.
    pub fn observe_latency(&self, endpoint: Endpoint, us: u64) {
        self.endpoint_latency[endpoint.index()].observe(us);
    }

    /// Snapshot of `endpoint`'s latency histogram, for quantiles.
    pub fn latency_snapshot(&self, endpoint: Endpoint) -> HistSnapshot {
        self.endpoint_latency[endpoint.index()].snapshot()
    }

    /// Renders the exposition text. `gauges` carries point-in-time
    /// values owned elsewhere (queue depth, open connections, model
    /// versions).
    pub fn render(&self, gauges: &[(String, u64)]) -> String {
        let mut out = String::with_capacity(2048);
        for e in Endpoint::ALL {
            let _ = writeln!(
                out,
                "nd_serve_requests_total{{endpoint=\"{}\"}} {}",
                e.label(),
                self.requests[e.index()].get()
            );
        }
        for e in Endpoint::ALL {
            let _ = writeln!(
                out,
                "nd_serve_errors_total{{endpoint=\"{}\"}} {}",
                e.label(),
                self.errors[e.index()].get()
            );
        }
        let scalars: [(&str, &Counter); 7] = [
            ("nd_serve_overload_rejections_total", &self.overload_rejections),
            ("nd_serve_predictions_total", &self.predictions),
            ("nd_serve_batches_total", &self.batches),
            ("nd_serve_cache_hits_total", &self.cache_hits),
            ("nd_serve_cache_misses_total", &self.cache_misses),
            ("nd_serve_model_swaps_total", &self.model_swaps),
            ("nd_serve_checkpoints_pruned_total", &self.checkpoints_pruned),
        ];
        for (name, counter) in scalars {
            let _ = writeln!(out, "{name} {}", counter.get());
        }
        self.predict_latency_us.render(&mut out, "nd_serve_predict_latency_us");
        self.batch_rows.render(&mut out, "nd_serve_batch_rows");
        for e in Endpoint::ALL {
            let snap = self.endpoint_latency[e.index()].snapshot();
            if snap.count == 0 {
                continue;
            }
            render_quantiles(&mut out, "nd_serve_latency_us", &[("endpoint", e.label())], &snap);
        }
        for (name, value) in gauges {
            let _ = writeln!(out, "{name} {value}");
        }
        out
    }
}

/// Writes a Prometheus-summary-style quantile series (p50/p99/p999
/// plus `_sum`/`_count`) for one labelled histogram snapshot.
pub fn render_quantiles(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    snap: &HistSnapshot,
) {
    let mut label_text = String::new();
    for (k, v) in labels {
        if !label_text.is_empty() {
            label_text.push(',');
        }
        let _ = write!(label_text, "{k}=\"{v}\"");
    }
    let sep = if label_text.is_empty() { "" } else { "," };
    for (q, qv) in [("0.5", 0.5), ("0.99", 0.99), ("0.999", 0.999)] {
        let _ = writeln!(
            out,
            "{name}{{{label_text}{sep}quantile=\"{q}\"}} {}",
            snap.quantile(qv)
        );
    }
    let _ = writeln!(out, "{name}_sum{{{label_text}}} {}", snap.sum);
    let _ = writeln!(out, "{name}_count{{{label_text}}} {}", snap.count);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::default();
        m.request(Endpoint::Predict);
        m.request(Endpoint::Predict);
        m.error(Endpoint::Predict);
        assert_eq!(m.requests_for(Endpoint::Predict), 2);
        let text = m.render(&[]);
        assert!(text.contains("nd_serve_requests_total{endpoint=\"predict\"} 2"), "{text}");
        assert!(text.contains("nd_serve_errors_total{endpoint=\"predict\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [5, 50, 500, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5555);
        let mut out = String::new();
        h.render(&mut out, "x");
        assert!(out.contains("x_bucket{le=\"10\"} 1"), "{out}");
        assert!(out.contains("x_bucket{le=\"100\"} 2"));
        assert!(out.contains("x_bucket{le=\"1000\"} 3"));
        assert!(out.contains("x_bucket{le=\"+Inf\"} 4"));
    }

    #[test]
    fn endpoint_quantile_series_rendered() {
        let m = Metrics::default();
        for us in [100u64, 200, 300, 400, 50_000] {
            m.observe_latency(Endpoint::Predict, us);
        }
        let text = m.render(&[]);
        assert!(
            text.contains("nd_serve_latency_us{endpoint=\"predict\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("nd_serve_latency_us_count{endpoint=\"predict\"} 5"), "{text}");
        // Endpoints with no traffic emit nothing.
        assert!(!text.contains("endpoint=\"reload\",quantile"), "{text}");
        let snap = m.latency_snapshot(Endpoint::Predict);
        assert!(snap.quantile(0.99) >= 50_000, "p99 covers the outlier");
    }

    #[test]
    fn gauges_appended() {
        let m = Metrics::default();
        let text = m.render(&[("nd_serve_queue_depth".to_string(), 7)]);
        assert!(text.contains("nd_serve_queue_depth 7"));
    }
}
