//! Versioned model registry with hot swap.
//!
//! Each served model is an immutable [`ModelHandle`] behind an `Arc`:
//! request handlers resolve the handle once at admission and keep it
//! for the request's whole life, so a swap never tears a response —
//! in-flight work finishes on the version it started with while new
//! admissions see the fresh handle. Swaps load the newest
//! `nd-core::checkpoint` version from the `models` collection into a
//! freshly built architecture (paper §4.9: retraining continues from
//! checkpoints as data arrives; the serving tier picks the results up
//! without a restart) and then prune superseded checkpoint versions.
//!
//! The embedded store is single-writer: the registry opens the
//! database only inside [`Registry::refresh`] / [`Registry::load`]
//! and never holds it across requests, so an external trainer process
//! can write checkpoints between refreshes.

use crate::ServeError;
use nd_core::checkpoint::{latest_version, load_checkpoint, prune_checkpoints};
use nd_neural::Network;
use nd_store::Database;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, PoisonError, RwLock};

/// How to (re)build a served model's architecture; checkpoint
/// parameters are loaded on top.
pub struct ModelSpec {
    /// Checkpoint name in the `models` collection.
    pub name: String,
    /// Expected feature-vector width (request validation).
    pub input_dim: usize,
    builder: Box<dyn Fn() -> Network + Send + Sync>,
}

impl ModelSpec {
    /// Creates a spec. `builder` must construct the same architecture
    /// the checkpoints under `name` were exported from (its init seed
    /// is irrelevant — parameters are overwritten on load).
    pub fn new(
        name: impl Into<String>,
        input_dim: usize,
        builder: impl Fn() -> Network + Send + Sync + 'static,
    ) -> Self {
        ModelSpec { name: name.into(), input_dim, builder: Box::new(builder) }
    }
}

/// An immutable loaded model version.
pub struct ModelHandle {
    /// Model name.
    pub name: String,
    /// Loaded checkpoint version.
    pub version: u64,
    /// Feature-vector width.
    pub input_dim: usize,
    /// Trainable parameter count.
    pub n_params: usize,
    /// The frozen network (inference via `predict_batch(&self)`).
    pub network: Network,
}

/// One completed hot swap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapEvent {
    /// Model name.
    pub name: String,
    /// Version serving before the swap.
    pub from: u64,
    /// Version serving after the swap.
    pub to: u64,
    /// Checkpoint documents pruned after the swap.
    pub pruned: usize,
}

/// The live model table.
pub struct Registry {
    db_dir: PathBuf,
    specs: BTreeMap<String, ModelSpec>,
    models: RwLock<BTreeMap<String, Arc<ModelHandle>>>,
    keep_checkpoints: usize,
}

impl Registry {
    /// Opens the store, loads the newest checkpoint for every spec,
    /// and prunes superseded versions. Fails fast when any spec has no
    /// checkpoint — a server with nothing to serve is a deploy error.
    pub fn load(
        db_dir: impl Into<PathBuf>,
        specs: Vec<ModelSpec>,
        keep_checkpoints: usize,
    ) -> Result<Registry, ServeError> {
        if specs.is_empty() {
            return Err(ServeError::Config("at least one model spec is required".into()));
        }
        let registry = Registry {
            db_dir: db_dir.into(),
            specs: specs.into_iter().map(|s| (s.name.clone(), s)).collect(),
            models: RwLock::new(BTreeMap::new()),
            keep_checkpoints: keep_checkpoints.max(1),
        };
        let swapped = registry.refresh()?;
        if swapped.len() != registry.specs.len() {
            let missing: Vec<&str> = registry
                .specs
                .keys()
                .filter(|n| !swapped.iter().any(|s| &s.name == *n))
                .map(String::as_str)
                .collect();
            return Err(ServeError::Config(format!(
                "no checkpoint found for model(s): {}",
                missing.join(", ")
            )));
        }
        Ok(registry)
    }

    /// Directory of the backing store.
    pub fn db_dir(&self) -> &Path {
        &self.db_dir
    }

    /// The live handle for `name`.
    pub fn get(&self, name: &str) -> Option<Arc<ModelHandle>> {
        // Poison recovery on every lock: the table only ever holds
        // complete `Arc<ModelHandle>` entries (the single mutation is
        // one `insert`), so a panic elsewhere cannot leave it torn.
        self.models.read().unwrap_or_else(PoisonError::into_inner).get(name).cloned()
    }

    /// The only model, when exactly one is served (lets single-model
    /// deployments omit the `model` request field).
    pub fn single(&self) -> Option<Arc<ModelHandle>> {
        let models = self.models.read().unwrap_or_else(PoisonError::into_inner);
        if models.len() == 1 {
            models.values().next().cloned()
        } else {
            None
        }
    }

    /// All live handles, name-ordered.
    pub fn list(&self) -> Vec<Arc<ModelHandle>> {
        self.models.read().unwrap_or_else(PoisonError::into_inner).values().cloned().collect()
    }

    /// Re-opens the store and hot-swaps every model whose newest
    /// checkpoint is ahead of the serving version, pruning superseded
    /// checkpoints afterwards. Returns one event per swap. In-flight
    /// requests keep their admitted handle; only new admissions see
    /// the swapped version.
    pub fn refresh(&self) -> Result<Vec<SwapEvent>, ServeError> {
        let mut db = Database::open(&self.db_dir)?;
        let mut events = Vec::new();
        for (name, spec) in &self.specs {
            let serving = self.get(name).map(|h| h.version).unwrap_or(0);
            let newest = latest_version(&db, name).unwrap_or(0);
            if newest <= serving {
                continue;
            }
            // Build + load outside the lock: the write lock is held
            // only for the pointer swap.
            let mut network = (spec.builder)();
            let version = load_checkpoint(&db, name, &mut network)?;
            let handle = Arc::new(ModelHandle {
                name: name.clone(),
                version,
                input_dim: spec.input_dim,
                n_params: network.n_params(),
                network,
            });
            self.models
                .write()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(name.clone(), handle);
            let pruned = prune_checkpoints(&mut db, name, self.keep_checkpoints)?;
            events.push(SwapEvent { name: name.clone(), from: serving, to: version, pruned });
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::checkpoint::save_checkpoint;
    use nd_core::predict::build_mlp;
    use nd_linalg::Mat;
    use nd_store::Filter;

    fn tmpdir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("ndreg-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn spec(dim: usize) -> ModelSpec {
        ModelSpec::new("likes", dim, move || build_mlp(dim, 0))
    }

    #[test]
    fn loads_latest_and_serves_it() {
        let dir = tmpdir("load");
        let trained = build_mlp(6, 7);
        {
            let mut db = Database::open(&dir).unwrap();
            save_checkpoint(&mut db, "likes", &build_mlp(6, 1)).unwrap();
            save_checkpoint(&mut db, "likes", &trained).unwrap();
        }
        let reg = Registry::load(&dir, vec![spec(6)], 3).unwrap();
        let h = reg.get("likes").unwrap();
        assert_eq!(h.version, 2);
        assert_eq!(h.input_dim, 6);
        let x = Mat::random_normal(3, 6, 0.0, 1.0, 1);
        assert_eq!(h.network.predict_batch(&x), trained.predict_batch(&x));
        assert!(reg.single().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_checkpoint_fails_fast() {
        let dir = tmpdir("missing");
        Database::open(&dir).unwrap().persist().unwrap();
        let err = Registry::load(&dir, vec![spec(6)], 3).err().expect("must fail");
        assert!(err.to_string().contains("likes"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refresh_swaps_in_newer_version_and_prunes() {
        let dir = tmpdir("swap");
        {
            let mut db = Database::open(&dir).unwrap();
            save_checkpoint(&mut db, "likes", &build_mlp(6, 1)).unwrap();
        }
        let reg = Registry::load(&dir, vec![spec(6)], 1).unwrap();
        let old = reg.get("likes").unwrap();
        assert_eq!(old.version, 1);
        assert!(reg.refresh().unwrap().is_empty(), "no new version yet");

        let newer = build_mlp(6, 99);
        {
            let mut db = Database::open(&dir).unwrap();
            save_checkpoint(&mut db, "likes", &newer).unwrap();
            save_checkpoint(&mut db, "likes", &newer).unwrap();
        }
        let events = reg.refresh().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!((events[0].from, events[0].to), (1, 3));
        assert_eq!(events[0].pruned, 2, "keep_last=1 prunes versions 1 and 2");
        assert_eq!(reg.get("likes").unwrap().version, 3);
        // The old Arc still works: in-flight requests are unaffected.
        let x = Mat::random_normal(2, 6, 0.0, 1.0, 2);
        let _ = old.network.predict_batch(&x);

        let db = Database::open(&dir).unwrap();
        assert_eq!(
            db.get_collection(nd_core::checkpoint::MODELS_COLLECTION)
                .unwrap()
                .count(&Filter::eq("name", "likes")),
            1
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_is_none_with_two_models() {
        let dir = tmpdir("two");
        {
            let mut db = Database::open(&dir).unwrap();
            save_checkpoint(&mut db, "likes", &build_mlp(4, 1)).unwrap();
            save_checkpoint(&mut db, "retweets", &build_mlp(4, 2)).unwrap();
        }
        let specs = vec![
            ModelSpec::new("likes", 4, || build_mlp(4, 0)),
            ModelSpec::new("retweets", 4, || build_mlp(4, 0)),
        ];
        let reg = Registry::load(&dir, specs, 3).unwrap();
        assert!(reg.single().is_none());
        assert_eq!(reg.list().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
