//! Retrain-from-cached-run: the paper's two-hourly refresh loop,
//! driven through the staged pipeline's artifact cache.
//!
//! `POST /admin/reload` with a `run_dir` body re-executes the nd-core
//! pipeline against that cache directory. A warm cache replays every
//! stage from disk (zero stage bodies run), so the expensive part of a
//! refresh collapses to feature assembly + network training; a cache
//! dirtied by new data or changed knobs recomputes exactly the
//! invalidated cone. The freshly trained networks are checkpointed
//! into the registry's store and hot-swapped without dropping
//! in-flight requests, and the run's [`RunReport`] is surfaced on
//! `GET /metrics` as per-stage gauges.

use crate::registry::{Registry, SwapEvent};
use crate::ServeError;
use nd_core::checkpoint::save_checkpoint;
use nd_core::features::DatasetVariant;
use nd_core::patterns_module::PatternsOutput;
use nd_core::pipeline::{Pipeline, PipelineConfig, RunReport};
use nd_core::predict::{NetworkKind, PredictConfig, Target};
use nd_neural::{Trainer, TrainerConfig};
use nd_store::Database;
use std::path::Path;

/// One model to retrain and checkpoint on every refresh.
#[derive(Debug, Clone)]
pub struct RetrainModel {
    /// Checkpoint name — must match a served [`crate::ModelSpec`] for
    /// the refresh to swap it in.
    pub name: String,
    /// Network architecture (paper Tables 8–9 columns).
    pub kind: NetworkKind,
    /// Label set to fit (likes or retweets).
    pub target: Target,
}

/// Everything a reload-with-retrain needs besides the run directory.
#[derive(Debug, Clone)]
pub struct RetrainSpec {
    /// Pipeline knobs; the cache directory inside is overridden by the
    /// request's `run_dir`.
    pub pipeline: PipelineConfig,
    /// Which feature table to build (paper Table 2).
    pub variant: DatasetVariant,
    /// Training protocol (batch size, epochs, early stopping, seed).
    pub predict: PredictConfig,
    /// Models to retrain, in order.
    pub models: Vec<RetrainModel>,
    /// Seed for dataset assembly (subsampling / shuffling).
    pub dataset_seed: u64,
}

/// Runs the pipeline against `run_dir`'s artifact cache, retrains every
/// model in `spec`, checkpoints the results into the registry's store,
/// and hot-swaps the registry to the new versions.
///
/// Returns the pipeline's per-stage report (cache status, wall time,
/// artifact bytes), the registry swap events, and the run's mined
/// pattern catalog (served at `GET /patterns`).
pub fn retrain_from_run(
    registry: &Registry,
    spec: &RetrainSpec,
    run_dir: &Path,
) -> Result<(RunReport, Vec<SwapEvent>, PatternsOutput), ServeError> {
    let mut config = spec.pipeline.clone();
    config.cache.dir = Some(run_dir.to_path_buf());
    let (output, report) = Pipeline::new(config).run_with_report()?;

    let dataset = output.dataset(spec.variant, spec.dataset_seed);
    if dataset.is_empty() {
        return Err(ServeError::Config("retraining dataset is empty".to_string()));
    }

    let mut db = Database::open(registry.db_dir())?;
    let trainer = Trainer::new(TrainerConfig {
        batch_size: spec.predict.batch_size,
        max_epochs: spec.predict.max_epochs,
        early_stopping: spec.predict.early_stopping.clone(),
        seed: spec.predict.seed,
    });
    for model in &spec.models {
        let mut network = model.kind.build(dataset.x.cols(), spec.predict.seed);
        let mut optimizer = model.kind.optimizer();
        let y = match model.target {
            Target::Likes => &dataset.y_likes,
            Target::Retweets => &dataset.y_retweets,
        };
        trainer.fit(&mut network, &dataset.x, y, optimizer.as_mut());
        save_checkpoint(&mut db, &model.name, &network)?;
    }
    drop(db);

    let events = registry.refresh()?;
    Ok((report, events, output.patterns))
}
