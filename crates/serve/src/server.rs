//! The HTTP listener: routing, validation, backpressure, graceful
//! shutdown, and the background checkpoint refresher.
//!
//! Threading layout: one non-blocking acceptor polls the listener and
//! the shutdown flag, round-robining accepted connections into
//! per-shard handler pools ([`ConnPool`]) — a bounded queue plus a
//! spawn-on-demand thread set capped at
//! [`crate::shard::ShardConfig::handlers_per_shard`]. Handlers run the
//! keep-alive loop with one reusable [`ConnBufs`] per connection.
//! Predictions route by model name through the [`ShardSet`]'s
//! consistent-hash ring to that model's shard, whose own batcher and
//! cache serve it — there is no globally locked queue anywhere on the
//! request path. An optional refresher thread hot-swaps newer
//! checkpoints on an interval.
//!
//! Admission control is layered: a full per-shard connection backlog
//! sheds new connections with an immediate best-effort 503; a full
//! per-shard batcher queue sheds `/predict` with 503 plus a
//! `Retry-After` estimated from that shard's queue depth and recent
//! drain rate. Accepted work is never dropped.
//!
//! Shutdown order: close the front door (flag + acceptor join), close
//! the pools and join their handlers (queued connections still get a
//! response, with `Connection: close`), then drain every shard's
//! batcher in shard order so every admitted row is answered.

use crate::batcher::{BatchConfig, SubmitError};
use crate::http::{read_request, write_response, write_response_with, ConnBufs, ReadOutcome, ReadParams};
use crate::metrics::{render_quantiles, Endpoint, Metrics};
use crate::registry::{ModelHandle, Registry};
use crate::retrain::{retrain_from_run, RetrainSpec};
use crate::shard::{Shard, ShardConfig, ShardSet};
use crate::stream::{SliceRetrain, StreamRetrainSpec, StreamRetrainer};
use crate::hist::HistSnapshot;
use crate::ServeError;
use nd_core::patterns_module::PatternsOutput;
use nd_core::pipeline::RunReport;
use nd_linalg::vecops::argmax;
use nd_patterns::{symbol_label, PatternCategory};
use serde_json::{json, Value};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Micro-batching parameters. `workers` and the cache capacity
    /// are totals divided across shards.
    pub batch: BatchConfig,
    /// Prediction-cache capacity in rows across all shards (`0`
    /// disables).
    pub cache_rows: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Poll the store for newer checkpoints this often (`None` =
    /// manual `POST /admin/reload` only).
    pub refresh_interval: Option<Duration>,
    /// Enables reload-with-retrain: `POST /admin/reload` with a
    /// `run_dir` body re-runs the pipeline against that artifact
    /// cache, retrains these models, and hot-swaps them (`None` =
    /// plain checkpoint refresh only).
    pub retrain: Option<RetrainSpec>,
    /// Enables the streaming refresh loop: `POST /admin/reload` with
    /// an `advance_stream` body folds the next firehose slice through
    /// the incremental DAG, retrains these models on the new head,
    /// and hot-swaps them (`None` = no stream attached).
    pub stream: Option<StreamRetrainSpec>,
    /// Shard topology: shard count, replication, handler pools.
    pub shard: ShardConfig,
    /// How long a partially received request may trickle in before
    /// the connection is dropped (the slow-loris bound).
    pub head_deadline: Duration,
    /// Idle keep-alive connections are closed after this long,
    /// freeing their pool handler for queued connections.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            batch: BatchConfig::default(),
            cache_rows: 4096,
            max_body_bytes: 1 << 20,
            refresh_interval: None,
            retrain: None,
            stream: None,
            shard: ShardConfig::default(),
            head_deadline: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// How often blocked loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(5);

/// Per-connection read timeout; bounds how long an idle keep-alive
/// connection can ignore shutdown.
const READ_TIMEOUT: Duration = Duration::from_millis(25);

/// How long a parked pool handler sleeps between closed-flag checks.
const PARK_TIMEOUT: Duration = Duration::from_millis(100);

struct Shared {
    registry: Registry,
    shards: ShardSet,
    metrics: Arc<Metrics>,
    shutdown: AtomicBool,
    open_conns: AtomicUsize,
    read_params: ReadParams,
    idle_timeout: Duration,
    retrain: Option<RetrainSpec>,
    /// The per-slice refresh loop, when a stream is attached.
    stream: Option<StreamRetrainer>,
    /// Per-stage report of the most recent reload-with-retrain,
    /// rendered into `GET /metrics`.
    last_run: Mutex<Option<RunReport>>,
    /// Record of the most recent stream advance, rendered into
    /// `GET /metrics` as per-slice fold and staleness gauges.
    last_slice: Mutex<Option<SliceRetrain>>,
    /// Pattern catalog mined by the most recent reload-with-retrain,
    /// served at `GET /patterns` and summarized in `GET /metrics`.
    patterns: Mutex<Option<Arc<PatternsOutput>>>,
}

impl Shared {
    fn apply_swaps(&self, events: &[crate::registry::SwapEvent]) {
        self.metrics.model_swaps.add(events.len() as u64);
        let pruned: usize = events.iter().map(|e| e.pruned).sum();
        self.metrics.checkpoints_pruned.add(pruned as u64);
    }
}

/// One shard's connection pool: a bounded queue of accepted streams
/// plus handler threads spawned on demand up to a cap. Handlers park
/// on the condvar between connections, so a warm pool serves a new
/// connection without a thread spawn.
struct ConnPool {
    shard_id: usize,
    queue: Mutex<VecDeque<TcpStream>>,
    cond: Condvar,
    capacity: usize,
    max_handlers: usize,
    handlers: AtomicUsize,
    idle: AtomicUsize,
    closed: AtomicBool,
    joins: Mutex<Vec<JoinHandle<()>>>,
}

impl ConnPool {
    fn new(shard_id: usize, capacity: usize, max_handlers: usize) -> ConnPool {
        ConnPool {
            shard_id,
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            capacity: capacity.max(1),
            max_handlers: max_handlers.max(1),
            handlers: AtomicUsize::new(0),
            idle: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            joins: Mutex::new(Vec::new()),
        }
    }

    /// Hands an accepted connection to this pool, or sheds it with a
    /// best-effort 503 when the backlog is full. Called only from the
    /// acceptor thread.
    fn dispatch(self: &Arc<ConnPool>, shared: &Arc<Shared>, stream: TcpStream) {
        let spawn_needed = {
            let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if self.closed.load(Ordering::SeqCst) || queue.len() >= self.capacity {
                drop(queue);
                shed_connection(stream);
                return;
            }
            queue.push_back(stream);
            shared.open_conns.fetch_add(1, Ordering::SeqCst);
            self.idle.load(Ordering::SeqCst) == 0
                && self.handlers.load(Ordering::SeqCst) < self.max_handlers
        };
        self.cond.notify_one();
        if spawn_needed {
            self.spawn_handler(shared);
        }
    }

    fn spawn_handler(self: &Arc<ConnPool>, shared: &Arc<Shared>) {
        let n = self.handlers.fetch_add(1, Ordering::SeqCst);
        if n >= self.max_handlers {
            self.handlers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let pool = Arc::clone(self);
        let shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name(format!("nd-serve-s{}h{}", self.shard_id, n))
            .spawn(move || handler_loop(&shared, &pool));
        match spawned {
            Ok(join) => {
                self.joins.lock().unwrap_or_else(PoisonError::into_inner).push(join)
            }
            Err(_) => {
                // Thread spawn failed; queued connections will be
                // picked up by existing handlers (or the next
                // dispatch's spawn attempt).
                self.handlers.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Stops accepting new connections and wakes every parked handler
    /// so the queue drains and the threads exit.
    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.cond.notify_all();
    }

    /// Joins all handler threads. Call after [`ConnPool::close`].
    fn join(&self) {
        // Take the handles under the lock, join outside it — joining
        // with the lock held would block a concurrent spawn_handler.
        let joins: Vec<JoinHandle<()>> = {
            let mut guard = self.joins.lock().unwrap_or_else(PoisonError::into_inner);
            guard.drain(..).collect()
        };
        for join in joins {
            // nd-lint: allow(result-dropped) — join only errs if the handler panicked; teardown proceeds
            let _ = join.join();
        }
    }
}

/// Best-effort 503 for a connection shed at the backlog door. The
/// write races the client's own send; a client that sees a reset
/// instead of the reply treats it the same way (retry later).
fn shed_connection(mut stream: TcpStream) {
    // nd-lint: allow(result-dropped) — the connection is being dropped either way
    let _ = write_response(
        &mut stream,
        503,
        "application/json",
        &[("Retry-After", "1".to_string())],
        b"{\"error\":\"connection backlog full\"}",
        false,
    );
}

fn handler_loop(shared: &Arc<Shared>, pool: &Arc<ConnPool>) {
    loop {
        let next = {
            let mut queue = pool.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if pool.closed.load(Ordering::SeqCst) {
                    break None;
                }
                pool.idle.fetch_add(1, Ordering::SeqCst);
                let (guard, _timeout) = pool
                    .cond
                    .wait_timeout(queue, PARK_TIMEOUT)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
                pool.idle.fetch_sub(1, Ordering::SeqCst);
            }
        };
        match next {
            Some(stream) => {
                handle_connection(shared, stream);
                shared.open_conns.fetch_sub(1, Ordering::SeqCst);
            }
            None => return,
        }
    }
}

/// A running server. Dropping it signals shutdown; call
/// [`Server::shutdown`] for the full graceful drain.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    pools: Vec<Arc<ConnPool>>,
    acceptor: Option<JoinHandle<()>>,
    refresher: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `registry` in background threads.
    pub fn start(config: ServeConfig, registry: Registry) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::default());
        let shards =
            ShardSet::start(&config.shard, &config.batch, config.cache_rows, &metrics)?;
        let shared = Arc::new(Shared {
            registry,
            shards,
            metrics,
            shutdown: AtomicBool::new(false),
            open_conns: AtomicUsize::new(0),
            read_params: ReadParams {
                max_body: config.max_body_bytes,
                head_deadline: config.head_deadline,
            },
            idle_timeout: config.idle_timeout,
            retrain: config.retrain.clone(),
            stream: config.stream.clone().map(StreamRetrainer::new),
            last_run: Mutex::new(None),
            last_slice: Mutex::new(None),
            patterns: Mutex::new(None),
        });
        let pools: Vec<Arc<ConnPool>> = (0..shared.shards.len())
            .map(|id| {
                Arc::new(ConnPool::new(
                    id,
                    config.shard.conn_backlog,
                    config.shard.handlers_per_shard,
                ))
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            let pools = pools.clone();
            std::thread::Builder::new()
                .name("nd-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &pools))
                .map_err(ServeError::Io)?
        };

        let refresher = match config.refresh_interval {
            Some(interval) => {
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("nd-serve-refresh".to_string())
                    .spawn(move || refresh_loop(&shared, interval))
                    .map_err(ServeError::Io)?;
                Some(handle)
            }
            None => None,
        };

        Ok(Server { addr, shared, pools, acceptor: Some(acceptor), refresher })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This server's metrics.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The model registry.
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// Number of serving shards.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// The shard id owning `model` (primary, ignoring replication).
    pub fn shard_for(&self, model: &str) -> usize {
        self.shared.shards.owner_id(model)
    }

    /// Graceful shutdown: stop accepting, let in-flight connections
    /// finish, answer every admitted prediction, join all threads.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            // nd-lint: allow(result-dropped) — join only errs if the thread panicked; shutdown proceeds either way
            let _ = acceptor.join();
        }
        if let Some(refresher) = self.refresher.take() {
            // nd-lint: allow(result-dropped) — join only errs if the thread panicked; shutdown proceeds either way
            let _ = refresher.join();
        }
        // Handlers see the flag within one read timeout and answer
        // queued connections with `Connection: close`; joining the
        // pools is the wait for in-flight work.
        for pool in &self.pools {
            pool.close();
        }
        for pool in &self.pools {
            pool.join();
        }
        // Belt and braces: the joins above imply open_conns == 0, but
        // a wedged peer must not turn drain into a hang.
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.open_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(POLL);
        }
        self.shared.shards.drain();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for pool in &self.pools {
            pool.close();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, pools: &[Arc<ConnPool>]) {
    let mut rr = 0usize;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // Round-robin across shard pools: connection placement
                // is load balancing only — predictions still route by
                // model through the ring, whatever pool reads them.
                rr = (rr + 1) % pools.len().max(1);
                match pools.get(rr) {
                    Some(pool) => pool.dispatch(shared, stream),
                    None => drop(stream),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn refresh_loop(shared: &Arc<Shared>, interval: Duration) {
    let mut last = Instant::now();
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(POLL);
        if last.elapsed() < interval {
            continue;
        }
        last = Instant::now();
        // A refresh hitting a mid-write store surfaces as Err here and
        // is retried next tick; serving continues on the old version.
        if let Ok(events) = shared.registry.refresh() {
            shared.apply_swaps(&events);
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // nd-lint: allow(result-dropped) — nodelay is an advisory latency tweak; serving works without it
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(stream);
    // One set of parse buffers and one response-head scratch for the
    // whole keep-alive session: the steady state allocates nothing.
    let mut bufs = ConnBufs::new();
    let mut scratch = String::new();
    let mut idle_since = Instant::now();
    loop {
        match read_request(&mut reader, &mut bufs, &shared.read_params) {
            Ok(ReadOutcome::TimedOut) => {
                if shared.shutdown.load(Ordering::SeqCst)
                    || idle_since.elapsed() > shared.idle_timeout
                {
                    return;
                }
            }
            Ok(ReadOutcome::TooLarge) => {
                // nd-lint: allow(result-dropped) — best-effort error reply; the connection closes right after
                let _ = respond_json(
                    &mut writer,
                    &mut scratch,
                    413,
                    &[],
                    &json!({"error": "request too large"}),
                    false,
                );
                return;
            }
            Ok(ReadOutcome::Malformed) => {
                // nd-lint: allow(result-dropped) — best-effort error reply; the connection closes right after
                let _ = respond_json(
                    &mut writer,
                    &mut scratch,
                    400,
                    &[],
                    &json!({"error": "malformed request"}),
                    false,
                );
                return;
            }
            Ok(ReadOutcome::Ready) => {
                idle_since = Instant::now();
                // During shutdown the response still goes out, but the
                // connection closes behind it.
                let keep_alive =
                    bufs.keep_alive() && !shared.shutdown.load(Ordering::SeqCst);
                if handle_request(shared, &bufs, &mut writer, &mut scratch, keep_alive)
                    .is_err()
                    || !keep_alive
                {
                    return;
                }
            }
            Ok(ReadOutcome::Closed) | Err(_) => return,
        }
    }
}

fn respond_json(
    stream: &mut TcpStream,
    scratch: &mut String,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &Value,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with(
        stream,
        scratch,
        status,
        "application/json",
        extra_headers,
        body.to_string().as_bytes(),
        keep_alive,
    )
}

fn handle_request(
    shared: &Arc<Shared>,
    request: &ConnBufs,
    writer: &mut TcpStream,
    scratch: &mut String,
    keep_alive: bool,
) -> std::io::Result<()> {
    let started = Instant::now();
    let path = request.path().split('?').next().unwrap_or("");
    let endpoint = match (request.method(), path) {
        ("POST", "/predict") => Endpoint::Predict,
        ("GET", "/models") => Endpoint::Models,
        ("GET", "/healthz") => Endpoint::Healthz,
        ("GET", "/metrics") => Endpoint::Metrics,
        ("POST", "/admin/reload") => Endpoint::Reload,
        ("GET", "/patterns") => Endpoint::Patterns,
        _ => Endpoint::Other,
    };
    shared.metrics.request(endpoint);

    if endpoint == Endpoint::Metrics {
        let text = render_metrics(shared);
        let result = write_response_with(
            writer,
            scratch,
            200,
            "text/plain; version=0.0.4",
            &[],
            text.as_bytes(),
            keep_alive,
        );
        observe_elapsed(shared, endpoint, started);
        return result;
    }

    let (status, extra, body) = match endpoint {
        Endpoint::Predict => handle_predict(shared, request),
        Endpoint::Models => handle_models(shared),
        Endpoint::Healthz => {
            (200, Vec::new(), json!({"status": "ok", "models": shared.registry.list().len()}))
        }
        Endpoint::Reload => handle_reload(shared, request),
        Endpoint::Patterns => handle_patterns(shared, request),
        // Already answered above; if routing ever regresses, a wrong
        // 500 beats a panic that kills the connection thread.
        Endpoint::Metrics => (500, Vec::new(), json!({"error": "metrics routed past its handler"})),
        Endpoint::Other => {
            let known = matches!(path, "/predict" | "/models" | "/healthz" | "/metrics" | "/admin/reload" | "/patterns");
            if known {
                (405, Vec::new(), json!({"error": "method not allowed"}))
            } else {
                (404, Vec::new(), json!({"error": "no such route"}))
            }
        }
    };
    if status >= 400 {
        shared.metrics.error(endpoint);
    }
    let extra: Vec<(&str, String)> =
        extra.iter().map(|(n, v)| (*n, v.clone())).collect();
    let result = respond_json(writer, scratch, status, &extra, &body, keep_alive);
    observe_elapsed(shared, endpoint, started);
    result
}

fn elapsed_us(started: Instant) -> u64 {
    started.elapsed().as_micros().min(u64::MAX as u128) as u64
}

fn observe_elapsed(shared: &Arc<Shared>, endpoint: Endpoint, started: Instant) {
    shared.metrics.observe_latency(endpoint, elapsed_us(started));
}

fn render_metrics(shared: &Arc<Shared>) -> String {
    let mut gauges = vec![
        ("nd_serve_queue_depth".to_string(), shared.shards.queue_depth() as u64),
        (
            "nd_serve_open_connections".to_string(),
            shared.open_conns.load(Ordering::SeqCst) as u64,
        ),
        ("nd_serve_cache_entries".to_string(), shared.shards.cache_entries() as u64),
        ("nd_serve_shards".to_string(), shared.shards.len() as u64),
    ];
    for shard in shared.shards.iter() {
        let label = format!("{{shard=\"{}\"}}", shard.id);
        gauges.push((
            format!("nd_serve_shard_queue_rows{label}"),
            shard.batcher.queue_depth() as u64,
        ));
        gauges.push((
            format!("nd_serve_shard_rows_completed_total{label}"),
            shard.batcher.completed_rows(),
        ));
        gauges.push((
            format!("nd_serve_shard_cache_entries{label}"),
            shard.cache.lock().unwrap_or_else(PoisonError::into_inner).len() as u64,
        ));
        gauges.push((format!("nd_serve_shard_retry_after_s{label}"), shard.retry_after_secs()));
    }
    for handle in shared.registry.list() {
        gauges.push((
            format!("nd_serve_model_version{{model=\"{}\"}}", handle.name),
            handle.version,
        ));
        gauges.push((
            format!("nd_serve_model_shard{{model=\"{}\"}}", handle.name),
            shared.shards.owner_id(&handle.name) as u64,
        ));
    }
    let patterns = shared.patterns.lock().unwrap_or_else(PoisonError::into_inner).clone();
    if let Some(out) = patterns {
        gauges.push((
            "nd_patterns_catalog_size".to_string(),
            out.catalog.patterns.len() as u64,
        ));
        for (category, count) in out.catalog.category_counts() {
            gauges.push((
                format!("nd_patterns_catalog_patterns{{category=\"{}\"}}", category.label()),
                count as u64,
            ));
        }
        gauges.push((
            "nd_patterns_planted_signatures".to_string(),
            out.planted.len() as u64,
        ));
    }
    // Clone out under a brief lock; rendering happens lock-free.
    let last_run = shared.last_run.lock().unwrap_or_else(PoisonError::into_inner).clone();
    if let Some(report) = last_run {
        for s in &report.stages {
            gauges.push((
                format!("nd_pipeline_stage_wall_ms{{stage=\"{}\"}}", s.stage),
                s.wall_ms as u64,
            ));
            gauges.push((
                format!("nd_pipeline_stage_cache_hit{{stage=\"{}\"}}", s.stage),
                u64::from(!s.cache.executed()),
            ));
            gauges.push((
                format!("nd_pipeline_artifact_bytes{{stage=\"{}\"}}", s.stage),
                s.bytes,
            ));
        }
    }
    let last_slice = shared.last_slice.lock().unwrap_or_else(PoisonError::into_inner).clone();
    if let Some(slice) = last_slice {
        gauges.push(("nd_stream_head_slice".to_string(), slice.head as u64));
        gauges.push((
            "nd_stream_slices_polled".to_string(),
            slice.stream.slices_polled as u64,
        ));
        gauges.push(("nd_stream_dataset_rows".to_string(), slice.dataset_rows as u64));
        gauges.push(("nd_stream_models_trained".to_string(), slice.trained as u64));
        gauges.push(("nd_stream_train_ms".to_string(), slice.train_ms as u64));
        gauges.push((
            "nd_stream_staleness_ms".to_string(),
            slice.completed_at.elapsed().as_millis().min(u64::MAX as u128) as u64,
        ));
        for f in &slice.stream.folds {
            let label = format!("{{stage=\"{}\",slice=\"{}\"}}", f.stage, f.slice);
            gauges.push((format!("nd_stream_fold_wall_ms{label}"), f.wall_ms as u64));
            gauges.push((
                format!("nd_stream_fold_cache_hit{label}"),
                u64::from(!f.cache.executed()),
            ));
            gauges.push((format!("nd_stream_fold_bytes{label}"), f.bytes));
        }
    }
    let mut text = shared.metrics.render(&gauges);
    // Per-shard predict quantiles, then the cross-shard merge. Shards
    // are visited in fixed id order so the merged series is
    // deterministic for a given set of per-shard snapshots.
    let mut merged = HistSnapshot::empty();
    for shard in shared.shards.iter() {
        let snap = shard.stats.latency.snapshot();
        if snap.count > 0 {
            let id = shard.id.to_string();
            render_quantiles(
                &mut text,
                "nd_serve_shard_predict_latency_us",
                &[("shard", id.as_str())],
                &snap,
            );
        }
        merged.merge(&snap);
    }
    if merged.count > 0 {
        render_quantiles(&mut text, "nd_serve_predict_quantiles_us", &[], &merged);
    }
    text
}

fn handle_models(shared: &Arc<Shared>) -> (u16, Vec<(&'static str, String)>, Value) {
    let models: Vec<Value> = shared
        .registry
        .list()
        .iter()
        .map(|h| {
            json!({
                "name": h.name,
                "version": h.version,
                "input_dim": h.input_dim,
                "n_params": h.n_params,
                "shard": shared.shards.owner_id(&h.name),
            })
        })
        .collect();
    (200, Vec::new(), json!({"models": models}))
}

fn handle_reload(
    shared: &Arc<Shared>,
    request: &ConnBufs,
) -> (u16, Vec<(&'static str, String)>, Value) {
    // `{"advance_stream": true}` folds the next firehose slice;
    // `{"run_dir": "..."}` selects batch reload-with-retrain; any
    // other body (including empty) is the plain checkpoint refresh.
    let body_json = serde_json::from_slice::<Value>(request.body()).ok();
    let advance_stream = body_json
        .as_ref()
        .and_then(|v| v.get("advance_stream").and_then(Value::as_bool))
        .unwrap_or(false);
    if advance_stream {
        let Some(retrainer) = shared.stream.as_ref() else {
            return (
                400,
                Vec::new(),
                json!({"error": "server has no stream retrain spec configured"}),
            );
        };
        return match retrainer.advance(&shared.registry) {
            Ok(slice) => {
                shared.apply_swaps(&slice.swapped);
                let swapped: Vec<Value> = slice
                    .swapped
                    .iter()
                    .map(|e| {
                        json!({"model": e.name, "from": e.from, "to": e.to, "pruned": e.pruned})
                    })
                    .collect();
                let folds: Vec<Value> = slice
                    .stream
                    .folds
                    .iter()
                    .map(|f| {
                        json!({
                            "stage": f.stage,
                            "slice": f.slice,
                            "cache": f.cache.as_str(),
                            "wall_ms": f.wall_ms,
                            "bytes": f.bytes,
                        })
                    })
                    .collect();
                let executed = slice.stream.executed();
                let body = json!({
                    "swapped": swapped,
                    "stream": {
                        "head": slice.head,
                        "horizon": retrainer.horizon(),
                        "executed": executed,
                        "replayed": slice.stream.folds.len() - executed,
                        "slices_polled": slice.stream.slices_polled,
                        "total_ms": slice.stream.total_ms,
                        "dataset_rows": slice.dataset_rows,
                        "trained": slice.trained,
                        "train_ms": slice.train_ms,
                        "folds": folds,
                    },
                });
                *shared.last_slice.lock().unwrap_or_else(PoisonError::into_inner) =
                    Some(slice);
                (200, Vec::new(), body)
            }
            Err(e @ ServeError::Config(_)) => (400, Vec::new(), json!({"error": e.to_string()})),
            Err(e) => (500, Vec::new(), json!({"error": e.to_string()})),
        };
    }
    let run_dir = body_json
        .as_ref()
        .and_then(|v| v.get("run_dir").and_then(Value::as_str).map(PathBuf::from));
    if let Some(run_dir) = run_dir {
        let Some(spec) = shared.retrain.as_ref() else {
            return (
                400,
                Vec::new(),
                json!({"error": "server has no retrain spec configured"}),
            );
        };
        return match retrain_from_run(&shared.registry, spec, &run_dir) {
            Ok((report, events, patterns)) => {
                shared.apply_swaps(&events);
                let swapped: Vec<Value> = events
                    .iter()
                    .map(|e| {
                        json!({"model": e.name, "from": e.from, "to": e.to, "pruned": e.pruned})
                    })
                    .collect();
                let stages: Vec<Value> = report
                    .stages
                    .iter()
                    .map(|s| {
                        json!({
                            "stage": s.stage,
                            "cache": s.cache.as_str(),
                            "wall_ms": s.wall_ms,
                            "bytes": s.bytes,
                        })
                    })
                    .collect();
                let executed = report.executed();
                let body = json!({
                    "swapped": swapped,
                    "pipeline": {
                        "executed": executed,
                        "replayed": report.stages.len() - executed,
                        "total_ms": report.total_ms,
                        "stages": stages,
                    },
                    "patterns": {
                        "cataloged": patterns.catalog.patterns.len(),
                        "planted": patterns.planted.len(),
                    },
                });
                *shared.last_run.lock().unwrap_or_else(PoisonError::into_inner) = Some(report);
                *shared.patterns.lock().unwrap_or_else(PoisonError::into_inner) =
                    Some(Arc::new(patterns));
                (200, Vec::new(), body)
            }
            Err(e) => (500, Vec::new(), json!({"error": e.to_string()})),
        };
    }
    match shared.registry.refresh() {
        Ok(events) => {
            shared.apply_swaps(&events);
            let swapped: Vec<Value> = events
                .iter()
                .map(|e| {
                    json!({"model": e.name, "from": e.from, "to": e.to, "pruned": e.pruned})
                })
                .collect();
            (200, Vec::new(), json!({"swapped": swapped}))
        }
        Err(e) => (500, Vec::new(), json!({"error": e.to_string()})),
    }
}

/// Extracts a `key=value` query parameter from a raw query string.
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// Default number of patterns returned when `?limit=` is absent.
const PATTERNS_DEFAULT_LIMIT: usize = 20;

/// Co-occurrence pairs returned alongside the patterns.
const PATTERNS_PAIR_LIMIT: usize = 10;

fn handle_patterns(
    shared: &Arc<Shared>,
    request: &ConnBufs,
) -> (u16, Vec<(&'static str, String)>, Value) {
    let snapshot = shared.patterns.lock().unwrap_or_else(PoisonError::into_inner).clone();
    let Some(out) = snapshot else {
        return (
            404,
            Vec::new(),
            json!({"error": "no pattern catalog loaded; POST /admin/reload with a run_dir to mine one"}),
        );
    };
    let query = request.path().split('?').nth(1).unwrap_or("");
    let category = match query_param(query, "category") {
        Some(raw) => match PatternCategory::parse(raw) {
            Some(c) => Some(c),
            None => {
                return (
                    400,
                    Vec::new(),
                    json!({"error": format!("unknown category: {raw}")}),
                )
            }
        },
        None => None,
    };
    let limit = query_param(query, "limit")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(PATTERNS_DEFAULT_LIMIT);

    let catalog = &out.catalog;
    let patterns: Vec<Value> = catalog
        .patterns
        .iter()
        .filter(|p| category.is_none_or(|c| p.category == c))
        .take(limit)
        .map(|p| {
            json!({
                "id": format!("{:016x}", p.id),
                "pattern": p.render(),
                "category": p.category.label(),
                "users": p.user_count,
                "support": p.support,
                "score": p.score,
            })
        })
        .collect();
    let categories: Value = catalog
        .category_counts()
        .iter()
        .map(|(c, n)| (c.label().to_string(), json!(n)))
        .collect::<serde_json::Map<_, _>>()
        .into();
    let pairs: Vec<Value> = catalog
        .pairs
        .iter()
        .take(PATTERNS_PAIR_LIMIT)
        .map(|p| {
            json!({
                "a": symbol_label(p.a),
                "b": symbol_label(p.b),
                "users": p.count,
                "jaccard": p.jaccard,
            })
        })
        .collect();
    (
        200,
        Vec::new(),
        json!({
            "n_users": catalog.n_users,
            "total_patterns": catalog.patterns.len(),
            "returned": patterns.len(),
            "categories": categories,
            "patterns": patterns,
            "top_pairs": pairs,
        }),
    )
}

/// A ready-to-serialize response: status, extra headers, JSON body.
type Response = (u16, Vec<(&'static str, String)>, Value);

/// A typed `/predict` failure. Each variant maps to exactly one HTTP
/// status, so the request path never panics and never invents ad-hoc
/// codes — the `?` operator carries failures here and
/// [`RequestError::response`] is the single place they become wire
/// bytes.
#[derive(Debug)]
enum RequestError {
    /// Malformed body, wrong feature width, missing fields → 400.
    BadRequest(String),
    /// Named model is not in the registry → 404.
    UnknownModel(String),
    /// Multiple models served but no `model` field → 400.
    ModelRequired,
    /// The target shard's admission queue is full → 503 +
    /// `Retry-After` from that shard's queue depth and drain rate.
    Overloaded {
        /// Rows queued at rejection time (returned to the client).
        queued_rows: usize,
        /// The shard's Retry-After estimate, in seconds.
        retry_after_s: u64,
    },
    /// Batcher is draining for shutdown → 503 + Retry-After.
    ShuttingDown,
    /// A batch worker dropped the reply channel → 500.
    WorkerFailed,
    /// A server-side invariant broke; the message is static so no
    /// internal state leaks to the client → 500.
    Internal(&'static str),
}

impl RequestError {
    fn response(self) -> Response {
        match self {
            RequestError::BadRequest(msg) => (400, Vec::new(), json!({"error": msg})),
            RequestError::UnknownModel(name) => {
                (404, Vec::new(), json!({"error": format!("unknown model: {name}")}))
            }
            RequestError::ModelRequired => (
                400,
                Vec::new(),
                json!({"error": "model field is required when serving multiple models"}),
            ),
            RequestError::Overloaded { queued_rows, retry_after_s } => (
                503,
                vec![("Retry-After", retry_after_s.to_string())],
                json!({
                    "error": "overloaded",
                    "queued_rows": queued_rows,
                    "retry_after_s": retry_after_s,
                }),
            ),
            RequestError::ShuttingDown => (
                503,
                vec![("Retry-After", "1".to_string())],
                json!({"error": "shutting down"}),
            ),
            RequestError::WorkerFailed => {
                (500, Vec::new(), json!({"error": "prediction worker failed"}))
            }
            RequestError::Internal(what) => (500, Vec::new(), json!({"error": what})),
        }
    }
}

fn parse_row(value: &Value) -> Option<Vec<f64>> {
    let items = value.as_array()?;
    let row: Vec<f64> = items.iter().filter_map(Value::as_f64).collect();
    (row.len() == items.len() && !row.is_empty()).then_some(row)
}

/// Extracts `(rows, is_batch)` from a predict body.
fn parse_rows(body: &Value) -> Result<(Vec<Vec<f64>>, bool), &'static str> {
    if let Some(raw) = body["rows"].as_array() {
        if raw.is_empty() {
            return Err("rows must be a non-empty array of number arrays");
        }
        let rows: Option<Vec<Vec<f64>>> = raw.iter().map(parse_row).collect();
        match rows {
            Some(rows) => Ok((rows, true)),
            None => Err("rows must be a non-empty array of number arrays"),
        }
    } else if body.get("features").is_some() {
        match parse_row(&body["features"]) {
            Some(row) => Ok((vec![row], false)),
            None => Err("features must be a non-empty number array"),
        }
    } else {
        Err("body needs a features array or a rows array of arrays")
    }
}

fn handle_predict(shared: &Arc<Shared>, request: &ConnBufs) -> Response {
    predict_inner(shared, request).unwrap_or_else(RequestError::response)
}

fn predict_inner(
    shared: &Arc<Shared>,
    request: &ConnBufs,
) -> Result<Response, RequestError> {
    let started = Instant::now();

    let body = request
        .json()
        .map_err(|e| RequestError::BadRequest(format!("invalid JSON: {e}")))?;
    let handle: Arc<ModelHandle> = match body["model"].as_str() {
        Some(name) => shared
            .registry
            .get(name)
            .ok_or_else(|| RequestError::UnknownModel(name.to_string()))?,
        None => shared.registry.single().ok_or(RequestError::ModelRequired)?,
    };
    let (rows, is_batch) =
        parse_rows(&body).map_err(|msg| RequestError::BadRequest(msg.into()))?;
    if let Some(bad) = rows.iter().find(|r| r.len() != handle.input_dim) {
        return Err(RequestError::BadRequest(format!(
            "feature vector has {} values, model {} expects {}",
            bad.len(),
            handle.name,
            handle.input_dim
        )));
    }

    // Route to the model's shard: its cache, its batcher, its queue.
    let shard: Arc<Shard> = shared.shards.route(&handle.name);

    // Cache pass. The admitted handle pins the version: a hot swap
    // between here and the forward pass changes nothing for this
    // request.
    let mut scores: Vec<Option<Vec<f64>>> = Vec::with_capacity(rows.len());
    let mut miss_indices = Vec::new();
    {
        let mut cache = shard.cache.lock().unwrap_or_else(PoisonError::into_inner);
        for (i, row) in rows.iter().enumerate() {
            match cache.get(&handle.name, handle.version, row) {
                Some(hit) => scores.push(Some(hit)),
                None => {
                    scores.push(None);
                    miss_indices.push(i);
                }
            }
        }
    }
    let hits = rows.len() - miss_indices.len();
    shared.metrics.cache_hits.add(hits as u64);
    shared.metrics.cache_misses.add(miss_indices.len() as u64);

    if !miss_indices.is_empty() {
        let miss_rows: Vec<Vec<f64>> =
            miss_indices.iter().map(|&i| rows[i].clone()).collect();
        let receiver =
            shard.batcher.submit(Arc::clone(&handle), miss_rows).map_err(|e| match e {
                SubmitError::Overloaded { queued_rows } => RequestError::Overloaded {
                    queued_rows,
                    retry_after_s: shard.retry_after_secs(),
                },
                SubmitError::ShuttingDown => RequestError::ShuttingDown,
            })?;
        let outputs = receiver.recv().map_err(|_| RequestError::WorkerFailed)?;
        let mut cache = shard.cache.lock().unwrap_or_else(PoisonError::into_inner);
        for (&i, output) in miss_indices.iter().zip(outputs) {
            cache.insert(&handle.name, handle.version, &rows[i], output.clone());
            scores[i] = Some(output);
        }
    }

    shared.metrics.predictions.add(rows.len() as u64);
    let us = elapsed_us(started);
    shared.metrics.predict_latency_us.observe(us);
    shard.stats.latency.observe(us);

    let mut results: Vec<(Vec<f64>, usize)> = Vec::with_capacity(scores.len());
    for s in scores {
        let s = s.ok_or(RequestError::Internal("row resolved by neither cache nor batcher"))?;
        let class = argmax(&s).unwrap_or(0);
        results.push((s, class));
    }
    let body = if is_batch {
        let predictions: Vec<Value> = results
            .iter()
            .map(|(s, class)| json!({"scores": s, "class": class}))
            .collect();
        json!({
            "model": handle.name,
            "version": handle.version,
            "predictions": predictions,
        })
    } else {
        let (s, class) =
            results.first().ok_or(RequestError::Internal("empty result set"))?;
        json!({
            "model": handle.name,
            "version": handle.version,
            "scores": s,
            "class": class,
        })
    };
    Ok((200, Vec::new(), body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::registry::ModelSpec;
    use nd_core::checkpoint::save_checkpoint;
    use nd_core::predict::build_mlp;
    use nd_linalg::Mat;
    use nd_store::Database;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("ndsrv-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn boot(dir: &PathBuf, dim: usize) -> Server {
        {
            let mut db = Database::open(dir).unwrap();
            save_checkpoint(&mut db, "likes", &build_mlp(dim, 11)).unwrap();
        }
        let spec = ModelSpec::new("likes", dim, move || build_mlp(dim, 0));
        let registry = Registry::load(dir, vec![spec], 2).unwrap();
        Server::start(ServeConfig::default(), registry).unwrap()
    }

    #[test]
    fn healthz_models_and_metrics_respond() {
        let dir = tmpdir("basic");
        let server = boot(&dir, 6);
        let mut client = Client::connect(server.addr()).unwrap();

        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(health.json().unwrap()["status"].as_str(), Some("ok"));

        let models = client.get("/models").unwrap();
        assert_eq!(models.status, 200);
        let list = models.json().unwrap();
        assert_eq!(list["models"][0]["name"].as_str(), Some("likes"));
        assert_eq!(list["models"][0]["version"].as_u64(), Some(1));
        let owner = list["models"][0]["shard"].as_u64().unwrap();
        assert!(owner < 4, "owner shard in range: {owner}");

        let metrics = client.get("/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        let text = metrics.text();
        assert!(text.contains("nd_serve_requests_total{endpoint=\"healthz\"} 1"), "{text}");
        assert!(text.contains("nd_serve_model_version{model=\"likes\"} 1"));
        assert!(text.contains("nd_serve_shards 4"), "{text}");
        assert!(text.contains("nd_serve_shard_queue_rows{shard=\"0\"}"), "{text}");

        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predict_single_matches_offline() {
        let dir = tmpdir("predict");
        let server = boot(&dir, 6);
        let handle = server.registry().get("likes").unwrap();
        let mut client = Client::connect(server.addr()).unwrap();

        let features: Vec<f64> = (0..6).map(|j| 0.25 * j as f64 - 0.5).collect();
        let response = client
            .post_json("/predict", &json!({"features": features}))
            .unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
        let body = response.json().unwrap();

        let offline = handle
            .network
            .predict_batch(&Mat::from_rows(std::slice::from_ref(&features)).unwrap());
        let served: Vec<f64> = body["scores"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert_eq!(served, offline.row(0).to_vec(), "served scores must be bit-identical");
        assert_eq!(body["class"].as_u64(), Some(argmax(offline.row(0)).unwrap() as u64));
        assert_eq!(body["version"].as_u64(), Some(1));

        // The predict latency surfaced in per-shard and merged series.
        let metrics = client.get("/metrics").unwrap();
        let text = metrics.text();
        assert!(text.contains("nd_serve_predict_quantiles_us{quantile=\"0.99\"}"), "{text}");

        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predict_validation_errors() {
        let dir = tmpdir("validate");
        let server = boot(&dir, 6);
        let mut client = Client::connect(server.addr()).unwrap();

        let bad_dim = client
            .post_json("/predict", &json!({"features": [1.0, 2.0]}))
            .unwrap();
        assert_eq!(bad_dim.status, 400);
        assert!(bad_dim.json().unwrap()["error"].as_str().unwrap().contains("expects 6"));

        let no_rows = client.post_json("/predict", &json!({"rows": []})).unwrap();
        assert_eq!(no_rows.status, 400);

        let unknown = client
            .post_json("/predict", &json!({"model": "ghost", "features": vec![0.0; 6]}))
            .unwrap();
        assert_eq!(unknown.status, 404);

        let not_json = client.request("POST", "/predict", None).unwrap();
        assert_eq!(not_json.status, 400);

        let wrong_method = client.get("/predict").unwrap();
        assert_eq!(wrong_method.status, 405);

        let missing = client.get("/nope").unwrap();
        assert_eq!(missing.status, 404);

        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_predict_and_cache_hits() {
        let dir = tmpdir("batchcache");
        let server = boot(&dir, 6);
        let metrics = server.metrics();
        let mut client = Client::connect(server.addr()).unwrap();

        let rows = vec![vec![0.0_f64; 6], vec![1.0; 6], vec![2.0; 6]];
        let body = json!({"rows": rows});
        let first = client.post_json("/predict", &body).unwrap();
        assert_eq!(first.status, 200, "{}", first.text());
        assert_eq!(first.json().unwrap()["predictions"].as_array().unwrap().len(), 3);
        assert_eq!(metrics.cache_misses.get(), 3);

        let second = client.post_json("/predict", &body).unwrap();
        assert_eq!(second.status, 200);
        assert_eq!(metrics.cache_hits.get(), 3, "repeat rows must hit the cache");
        assert_eq!(
            first.json().unwrap()["predictions"],
            second.json().unwrap()["predictions"],
            "cached scores are the same bytes"
        );

        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_swaps_to_new_checkpoint() {
        let dir = tmpdir("reload");
        let server = boot(&dir, 6);
        let mut client = Client::connect(server.addr()).unwrap();

        let noop = client.post_json("/admin/reload", &json!({})).unwrap();
        assert_eq!(noop.status, 200);
        assert_eq!(noop.json().unwrap()["swapped"].as_array().unwrap().len(), 0);

        {
            let mut db = Database::open(&dir).unwrap();
            save_checkpoint(&mut db, "likes", &build_mlp(6, 77)).unwrap();
        }
        let reload = client.post_json("/admin/reload", &json!({})).unwrap();
        assert_eq!(reload.status, 200);
        let swapped = reload.json().unwrap();
        assert_eq!(swapped["swapped"][0]["to"].as_u64(), Some(2));
        assert_eq!(server.registry().get("likes").unwrap().version, 2);
        assert_eq!(server.metrics().model_swaps.get(), 1);

        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_shard_config_still_serves() {
        let dir = tmpdir("oneshard");
        {
            let mut db = Database::open(&dir).unwrap();
            save_checkpoint(&mut db, "likes", &build_mlp(6, 11)).unwrap();
        }
        let spec = ModelSpec::new("likes", 6, move || build_mlp(6, 0));
        let registry = Registry::load(&dir, vec![spec], 2).unwrap();
        let server = Server::start(
            ServeConfig {
                shard: ShardConfig { shards: 1, ..ShardConfig::default() },
                ..ServeConfig::default()
            },
            registry,
        )
        .unwrap();
        assert_eq!(server.shard_count(), 1);
        let mut client = Client::connect(server.addr()).unwrap();
        let response = client
            .post_json("/predict", &json!({"features": vec![0.5; 6]}))
            .unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
