//! Horizontal sharding of the serving data plane.
//!
//! A [`ShardSet`] partitions models across N independent shards, each
//! owning its own [`Batcher`] (bounded admission queue + workers) and
//! its own [`LruCache`]. Routing is consistent hashing on the model
//! name over a 64-vnode-per-shard ring, so adding a shard moves only
//! `~1/N` of the models and two servers with the same config agree on
//! placement without coordination.
//!
//! Why this wins even on one core: the global batcher coalesces only
//! the *front run* of same-model jobs, so a hot-skew mix that
//! interleaves models fragments every forward pass down to a couple of
//! rows. Partitioning the queue by model keeps each shard's queue
//! homogeneous-ish, which restores long runs and therefore large
//! batches — the per-row cost of a 64-row pass is ~6x cheaper than 64
//! singles (see `BENCH_serve.json`).
//!
//! Models listed in [`ShardConfig::replicated`] are served by
//! `replicas` distinct shards; requests for them spill via "power of
//! two choices": probe two candidate owners (rotating deterministic
//! pair) and pick the shorter queue. Everything else has exactly one
//! owner, preserving single-queue overload semantics.

use crate::batcher::{BatchConfig, Batcher};
use crate::cache::LruCache;
use crate::hist::LatencyHist;
use crate::metrics::Metrics;
use crate::ServeError;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Virtual nodes per shard on the hash ring. 64 keeps the expected
/// per-shard load imbalance under ~15% for small shard counts.
const VNODES: usize = 64;

/// Minimum elapsed time between drain-rate samples; shorter windows
/// are too noisy to steer Retry-After.
const DRAIN_SAMPLE_WINDOW: Duration = Duration::from_millis(250);

/// Sharding knobs.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of independent shards (batcher + cache + queue each).
    pub shards: usize,
    /// Model names replicated across several shards for p2c spill.
    pub replicated: Vec<String>,
    /// Shards serving each replicated model.
    pub replicas: usize,
    /// Handler threads per shard's connection pool.
    pub handlers_per_shard: usize,
    /// Accepted connections queued per shard before the acceptor
    /// sheds with an immediate 503.
    pub conn_backlog: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            replicated: Vec::new(),
            replicas: 2,
            handlers_per_shard: 64,
            conn_backlog: 256,
        }
    }
}

/// FNV-1a over bytes with a splitmix64 finalizer — stable across runs
/// and platforms, which keeps ring placement (and therefore bench
/// numbers) reproducible. The finalizer matters: raw FNV-1a has weak
/// avalanche in the high bits for short, similar strings (exactly what
/// vnode labels are), which skews the ring badly.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Consistent-hash ring: sorted (hash, shard) points, one per vnode.
#[derive(Debug, Clone)]
pub struct Ring {
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// Builds a ring over `shards` shards with [`VNODES`] virtual
    /// nodes each.
    pub fn new(shards: usize) -> Ring {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * VNODES);
        for shard in 0..shards {
            for vnode in 0..VNODES {
                let label = format!("shard-{shard}-vnode-{vnode}");
                points.push((fnv1a(label.as_bytes()), shard));
            }
        }
        // Tie-break on shard id so equal hashes (vanishingly rare)
        // still sort deterministically.
        points.sort_unstable();
        Ring { points, shards }
    }

    fn successor(&self, hash: u64) -> usize {
        // First ring point at or after the key's hash, wrapping.
        let idx = self.points.partition_point(|&(h, _)| h < hash);
        let at = if idx == self.points.len() { 0 } else { idx };
        self.points.get(at).map(|&(_, s)| s).unwrap_or(0)
    }

    /// The shard owning `key`.
    pub fn owner(&self, key: &str) -> usize {
        self.successor(fnv1a(key.as_bytes()))
    }

    /// The first `n` *distinct* shards walking the ring from `key`'s
    /// position — the replica set for a replicated model. The primary
    /// owner is always first.
    pub fn owners(&self, key: &str, n: usize) -> Vec<usize> {
        let n = n.clamp(1, self.shards);
        let hash = fnv1a(key.as_bytes());
        let start = self.points.partition_point(|&(h, _)| h < hash);
        let mut out: Vec<usize> = Vec::with_capacity(n);
        let mut step = 0;
        // Bounded by the ring size: every shard appears within one
        // full revolution, so the walk always terminates.
        while out.len() < n && step < self.points.len() {
            let at = (start + step) % self.points.len();
            if let Some(&(_, shard)) = self.points.get(at) {
                if !out.contains(&shard) {
                    out.push(shard);
                }
            }
            step += 1;
        }
        out
    }
}

/// Drain-rate window: samples the shard batcher's completed-row
/// counter and keeps an EWMA of rows/sec for Retry-After estimates.
#[derive(Debug)]
struct DrainWindow {
    at: Instant,
    rows: u64,
    rate: f64,
}

impl DrainWindow {
    /// Folds a new (time, completed-rows) sample into the EWMA and
    /// returns the current rate. Samples closer together than
    /// [`DRAIN_SAMPLE_WINDOW`] only read the previous estimate.
    fn observe(&mut self, now: Instant, completed: u64) -> f64 {
        let dt = now.saturating_duration_since(self.at);
        if dt >= DRAIN_SAMPLE_WINDOW {
            let delta = completed.saturating_sub(self.rows) as f64;
            let instant_rate = delta / dt.as_secs_f64();
            self.rate = if self.rate > 0.0 {
                0.5 * self.rate + 0.5 * instant_rate
            } else {
                instant_rate
            };
            self.at = now;
            self.rows = completed;
        }
        self.rate
    }
}

/// Seconds a shedding client should wait: queued work over drain
/// rate, clamped to `[1, 30]`. With no drain evidence yet (cold shard)
/// the estimate is optimistic — 1 second — because an idle shard
/// clears its queue on the next batch window.
fn retry_after_from(queued_rows: usize, rate: f64) -> u64 {
    if rate <= f64::EPSILON {
        return 1;
    }
    let secs = (queued_rows as f64 / rate).ceil();
    if secs < 1.0 {
        1
    } else if secs > 30.0 {
        30
    } else {
        secs as u64
    }
}

/// Per-shard instrumentation shared with `/metrics`.
#[derive(Debug)]
pub struct ShardStats {
    /// Predict latency observed by this shard's handlers (µs).
    pub latency: LatencyHist,
    drain: Mutex<DrainWindow>,
}

impl Default for ShardStats {
    fn default() -> Self {
        ShardStats {
            latency: LatencyHist::new(),
            drain: Mutex::new(DrainWindow { at: Instant::now(), rows: 0, rate: 0.0 }),
        }
    }
}

/// One shard: a batcher, a cache, and its stats.
pub struct Shard {
    /// Stable shard index, `0..shards`.
    pub id: usize,
    /// This shard's micro-batching queue and workers.
    pub batcher: Batcher,
    /// This shard's prediction cache.
    pub cache: Mutex<LruCache>,
    /// Latency histogram and drain-rate window.
    pub stats: ShardStats,
}

impl Shard {
    /// Current Retry-After estimate (seconds) from this shard's queue
    /// depth and recent drain rate.
    pub fn retry_after_secs(&self) -> u64 {
        let queued = self.batcher.queue_depth();
        let completed = self.batcher.completed_rows();
        let rate = {
            let mut w = self.stats.drain.lock().unwrap_or_else(PoisonError::into_inner);
            w.observe(Instant::now(), completed)
        };
        retry_after_from(queued, rate)
    }
}

/// The full set of shards plus the routing ring.
pub struct ShardSet {
    shards: Vec<Arc<Shard>>,
    ring: Ring,
    replicated: Vec<String>,
    replicas: usize,
    spill_tick: AtomicUsize,
}

impl ShardSet {
    /// Starts `config.shards` shards. The worker budget in
    /// `batch.workers` and the `cache_rows` capacity are *totals*,
    /// divided across shards (at least one worker and one cached row
    /// each unless caching is disabled outright), so thread count and
    /// memory stay comparable to the unsharded server regardless of
    /// shard count. All shards share the one global [`Metrics`] so
    /// aggregate counters stay meaningful.
    pub fn start(
        config: &ShardConfig,
        batch: &BatchConfig,
        cache_rows: usize,
        metrics: &Arc<Metrics>,
    ) -> Result<ShardSet, ServeError> {
        let n = config.shards.max(1);
        let per_shard = BatchConfig {
            workers: (batch.workers / n).max(1),
            ..batch.clone()
        };
        let per_shard_cache = if cache_rows == 0 { 0 } else { (cache_rows / n).max(1) };
        let mut shards = Vec::with_capacity(n);
        for id in 0..n {
            let batcher = Batcher::start(per_shard.clone(), Arc::clone(metrics))?;
            shards.push(Arc::new(Shard {
                id,
                batcher,
                cache: Mutex::new(LruCache::new(per_shard_cache)),
                stats: ShardStats::default(),
            }));
        }
        Ok(ShardSet {
            shards,
            ring: Ring::new(n),
            replicated: config.replicated.clone(),
            replicas: config.replicas.max(1),
            spill_tick: AtomicUsize::new(0),
        })
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the set is empty (never, in practice — `start`
    /// creates at least one shard).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// All shards in fixed id order, for metrics scrapes and drains.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Shard>> {
        self.shards.iter()
    }

    /// The shard at `id`, if any.
    pub fn get(&self, id: usize) -> Option<&Arc<Shard>> {
        self.shards.get(id)
    }

    /// The primary owner shard id for `model` (ignores replication).
    pub fn owner_id(&self, model: &str) -> usize {
        self.ring.owner(model)
    }

    /// Routes `model` to a shard. Unreplicated models go straight to
    /// their ring owner. Replicated models pick the shorter of two
    /// candidate owners' queues ("power of two choices"); the rotating
    /// tick makes candidate choice deterministic for tests while still
    /// spreading probes across the replica set.
    pub fn route(&self, model: &str) -> Arc<Shard> {
        let replicated = self.replicated.iter().any(|m| m == model);
        if !replicated || self.replicas < 2 {
            let id = self.ring.owner(model);
            return self.shard_or_first(id);
        }
        let owners = self.ring.owners(model, self.replicas);
        let k = owners.len();
        if k < 2 {
            let id = owners.first().copied().unwrap_or(0);
            return self.shard_or_first(id);
        }
        let tick = self.spill_tick.fetch_add(1, Ordering::Relaxed);
        let a = owners.get(tick % k).copied().unwrap_or(0);
        let b = owners.get((tick + 1) % k).copied().unwrap_or(0);
        let (sa, sb) = (self.shard_or_first(a), self.shard_or_first(b));
        let (da, db) = (sa.batcher.queue_depth(), sb.batcher.queue_depth());
        // Tie goes to the candidate earlier in replica order — the
        // primary when it is one of the pair.
        let pick_b = db < da
            || (db == da
                && owners.iter().position(|&s| s == b) < owners.iter().position(|&s| s == a));
        if pick_b {
            sb
        } else {
            sa
        }
    }

    fn shard_or_first(&self, id: usize) -> Arc<Shard> {
        match self.shards.get(id).or_else(|| self.shards.first()) {
            Some(s) => Arc::clone(s),
            // Unreachable: `start` always creates at least one shard.
            // Abort rather than panic so the invariant breaking loudly
            // can never poison a lock some handler is waiting on.
            None => std::process::abort(),
        }
    }

    /// Total rows queued across all shards (for the legacy aggregate
    /// gauge).
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.batcher.queue_depth()).sum()
    }

    /// Total cached rows across all shards.
    pub fn cache_entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.cache.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// Drains every shard's batcher in shard order. Idempotent.
    pub fn drain(&self) {
        for shard in &self.shards {
            shard.batcher.drain();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_owner_is_deterministic_and_stable() {
        let a = Ring::new(4);
        let b = Ring::new(4);
        for key in ["interest", "topic-7", "breaking-news", "sports"] {
            assert_eq!(a.owner(key), b.owner(key), "{key}");
            assert!(a.owner(key) < 4);
        }
    }

    #[test]
    fn ring_balance_is_reasonable() {
        let ring = Ring::new(8);
        let mut counts = vec![0usize; 8];
        for i in 0..4000 {
            counts[ring.owner(&format!("model-{i}"))] += 1;
        }
        let min = counts.iter().copied().min().unwrap();
        let max = counts.iter().copied().max().unwrap();
        assert!(min > 0, "every shard owns something: {counts:?}");
        assert!(max < 3 * min, "imbalance too high: {counts:?}");
    }

    #[test]
    fn owners_are_distinct_and_start_with_primary() {
        let ring = Ring::new(6);
        for key in ["a", "bb", "ccc", "model-42"] {
            let owners = ring.owners(key, 3);
            assert_eq!(owners.len(), 3);
            assert_eq!(owners[0], ring.owner(key), "primary first for {key}");
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "owners distinct for {key}");
        }
    }

    #[test]
    fn owners_clamped_to_shard_count() {
        let ring = Ring::new(2);
        assert_eq!(ring.owners("x", 5).len(), 2);
        assert_eq!(ring.owners("x", 0).len(), 1);
    }

    #[test]
    fn single_shard_ring_owns_everything() {
        let ring = Ring::new(1);
        for key in ["a", "b", "c"] {
            assert_eq!(ring.owner(key), 0);
        }
    }

    #[test]
    fn retry_after_estimates() {
        // No drain evidence yet: optimistic 1s.
        assert_eq!(retry_after_from(500, 0.0), 1);
        // 200 rows queued, draining 100 rows/s -> 2s.
        assert_eq!(retry_after_from(200, 100.0), 2);
        // Partial second rounds up, floor 1.
        assert_eq!(retry_after_from(10, 100.0), 1);
        // Deep queue, slow drain: clamped at 30.
        assert_eq!(retry_after_from(10_000, 10.0), 30);
    }

    #[test]
    fn drain_window_ewma_converges() {
        let t0 = Instant::now();
        let mut w = DrainWindow { at: t0, rows: 0, rate: 0.0 };
        // 100 rows over 1s -> first sample sets rate directly.
        let r1 = w.observe(t0 + Duration::from_secs(1), 100);
        assert!((r1 - 100.0).abs() < 1e-9, "r1 = {r1}");
        // 300 more rows over the next second -> EWMA of 100 and 300.
        let r2 = w.observe(t0 + Duration::from_secs(2), 400);
        assert!((r2 - 200.0).abs() < 1e-9, "r2 = {r2}");
        // Too-soon sample does not move the estimate.
        let r3 = w.observe(t0 + Duration::from_secs(2) + Duration::from_millis(10), 1000);
        assert!((r3 - 200.0).abs() < 1e-9, "r3 = {r3}");
    }

    #[test]
    fn shard_set_routes_unreplicated_to_single_owner() {
        let metrics = Arc::new(Metrics::default());
        let set = ShardSet::start(
            &ShardConfig { shards: 4, ..ShardConfig::default() },
            &BatchConfig::default(),
            64,
            &metrics,
        )
        .unwrap();
        let first = set.route("some-model").id;
        for _ in 0..10 {
            assert_eq!(set.route("some-model").id, first);
        }
        assert_eq!(first, set.owner_id("some-model"));
        set.drain();
    }

    #[test]
    fn shard_set_spills_replicated_models_within_replica_set() {
        let metrics = Arc::new(Metrics::default());
        let set = ShardSet::start(
            &ShardConfig {
                shards: 4,
                replicated: vec!["hot".into()],
                replicas: 2,
                ..ShardConfig::default()
            },
            &BatchConfig::default(),
            64,
            &metrics,
        )
        .unwrap();
        let allowed = set.ring.owners("hot", 2);
        for _ in 0..20 {
            let id = set.route("hot").id;
            assert!(allowed.contains(&id), "{id} not in replica set {allowed:?}");
        }
        set.drain();
    }
}
