//! Streaming retrain: the paper's refresh loop driven by the
//! incremental DAG instead of a batch re-run.
//!
//! Where [`crate::retrain`] replays the full staged pipeline from an
//! artifact cache, the stream retrainer advances [`StreamPipeline`]
//! one slice at a time: `POST /admin/reload {"advance_stream": true}`
//! folds the next firehose slice into the cached head artifacts
//! (every earlier slice replays from disk), recomputes the cheap
//! projections — trending, correlation, feature assembly — over the
//! new head state, refits the served models, and hot-swaps the new
//! checkpoints through the registry's `Arc` path. In-flight requests
//! keep the version they admitted with.
//!
//! The cheap projections are deliberately *not* fold stages: they are
//! O(events × topics) over the head state, orders of magnitude below
//! one NMF refine, so recomputing them per hot-swap is cheaper than
//! caching them (see `nd-core::stage`'s `incremental()` contract).
//!
//! Each advance leaves a [`SliceRetrain`] behind; the server renders
//! it on `GET /metrics` as per-slice fold latency gauges plus a
//! wall-clock staleness gauge (`nd_stream_staleness_ms` — time since
//! the serving models last caught up with the firehose head).

use crate::registry::{Registry, SwapEvent};
use crate::retrain::RetrainModel;
use crate::ServeError;
use nd_core::checkpoint::save_checkpoint;
use nd_core::correlate::correlate;
use nd_core::features::{assign_tweets, build_dataset, Dataset, DatasetVariant};
use nd_core::incremental::{StreamConfig, StreamPipeline, StreamReport, StreamState};
use nd_core::predict::PredictConfig;
use nd_core::stage::correlated_events;
use nd_core::trending::extract_trending;
use nd_neural::{Trainer, TrainerConfig};
use nd_store::Database;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Everything the per-slice refresh loop needs.
#[derive(Debug, Clone)]
pub struct StreamRetrainSpec {
    /// Incremental pipeline knobs. A cache directory is required in
    /// practice — without one every advance folds from slice 0.
    pub stream: StreamConfig,
    /// Which feature table to build (paper Table 2).
    pub variant: DatasetVariant,
    /// Training protocol (batch size, epochs, early stopping, seed).
    pub predict: PredictConfig,
    /// Models to retrain on every advance.
    pub models: Vec<RetrainModel>,
    /// Seed for feature assembly.
    pub dataset_seed: u64,
    /// Topic ↔ news-event similarity threshold (paper: 0.7).
    pub trending_threshold: f64,
    /// Trending ↔ Twitter-event similarity threshold (paper: 0.7).
    pub correlation_threshold: f64,
}

/// What one slice advance did.
#[derive(Debug, Clone)]
pub struct SliceRetrain {
    /// Slices folded so far (the new head is slice `head - 1`).
    pub head: usize,
    /// Per-fold cache record of the advancing run.
    pub stream: StreamReport,
    /// Feature rows the head state yielded. `0` means the early
    /// stream had no correlated events yet — the models keep serving
    /// their previous version rather than training on nothing.
    pub dataset_rows: usize,
    /// Models retrained and checkpointed.
    pub trained: usize,
    /// Wall time of projection + training + checkpointing.
    pub train_ms: f64,
    /// Registry swaps the refresh produced.
    pub swapped: Vec<SwapEvent>,
    /// When the advance completed (drives the staleness gauge).
    pub completed_at: Instant,
}

/// The per-slice refresh loop: owns the stream head position and
/// advances it one firehose slice per call.
pub struct StreamRetrainer {
    spec: StreamRetrainSpec,
    pipeline: StreamPipeline,
    head: Mutex<usize>,
}

impl StreamRetrainer {
    /// Creates the retrainer at head 0 (nothing folded yet).
    pub fn new(spec: StreamRetrainSpec) -> Self {
        let pipeline = StreamPipeline::new(spec.stream.clone());
        StreamRetrainer { spec, pipeline, head: Mutex::new(0) }
    }

    /// Slices folded so far.
    pub fn head(&self) -> usize {
        *self.head.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Total slices the configured firehose will ever emit.
    pub fn horizon(&self) -> usize {
        self.spec.stream.firehose.n_slices()
    }

    /// Folds the next firehose slice into the cached head, rebuilds
    /// the feature dataset from the new head state, retrains and
    /// checkpoints every configured model, and hot-swaps the registry.
    ///
    /// Serialized on the head lock: concurrent reloads advance one
    /// slice each, in order.
    ///
    /// # Errors
    /// [`ServeError::Config`] when the firehose is exhausted;
    /// [`ServeError::Core`] / [`ServeError::Store`] when a fold or
    /// checkpoint write fails.
    pub fn advance(&self, registry: &Registry) -> Result<SliceRetrain, ServeError> {
        let mut head = self.head.lock().unwrap_or_else(PoisonError::into_inner);
        if *head >= self.horizon() {
            return Err(ServeError::Config(format!(
                "firehose exhausted: all {} slices already folded",
                self.horizon()
            )));
        }
        let next = *head + 1;
        let (state, stream) = self.pipeline.run(next)?;

        let started = Instant::now();
        let dataset = head_dataset(&self.spec, &state);
        let mut trained = 0;
        let swapped = if dataset.is_empty() {
            Vec::new()
        } else {
            // The head lock IS the advance serialization: it must span
            // the fold, the checkpoint write, and the swap, or two
            // concurrent reloads would race to fold the same slice and
            // double-advance. It is never taken on the request path —
            // an admin reload blocking another admin reload is the
            // intended behavior, not a latency hazard.
            // nd-lint: allow(lock-order)
            let mut db = Database::open(registry.db_dir())?;
            let trainer = Trainer::new(TrainerConfig {
                batch_size: self.spec.predict.batch_size,
                max_epochs: self.spec.predict.max_epochs,
                early_stopping: self.spec.predict.early_stopping.clone(),
                seed: self.spec.predict.seed,
            });
            for model in &self.spec.models {
                let mut network = model.kind.build(dataset.x.cols(), self.spec.predict.seed);
                let mut optimizer = model.kind.optimizer();
                let y = match model.target {
                    nd_core::predict::Target::Likes => &dataset.y_likes,
                    nd_core::predict::Target::Retweets => &dataset.y_retweets,
                };
                trainer.fit(&mut network, &dataset.x, y, optimizer.as_mut());
                // nd-lint: allow(lock-order) — see the advance-serialization note above.
                save_checkpoint(&mut db, &model.name, &network)?;
                trained += 1;
            }
            drop(db);
            // nd-lint: allow(lock-order) — see the advance-serialization note above.
            registry.refresh()?
        };
        let train_ms = started.elapsed().as_secs_f64() * 1e3;

        *head = next;
        Ok(SliceRetrain {
            head: next,
            stream,
            dataset_rows: dataset.len(),
            trained,
            train_ms,
            swapped,
            completed_at: Instant::now(),
        })
    }
}

/// Recomputes the cheap projections (trending → correlation → feature
/// assembly) over a stream head state and assembles the dataset.
fn head_dataset(spec: &StreamRetrainSpec, state: &StreamState) -> Dataset {
    let vectors = &state.vectors.vectors;
    let trending = extract_trending(
        &state.topics.topics,
        &state.events.events.news,
        vectors,
        spec.trending_threshold,
    );
    let forward = correlate(
        &trending,
        &state.events.events.twitter,
        vectors,
        spec.correlation_threshold,
    );
    let correlated = correlated_events(&forward, &state.events.events.twitter);
    let assignments =
        assign_tweets(&correlated, &state.world.tweets, &state.corpora.twitter_ed);
    build_dataset(
        spec.variant,
        &correlated,
        &assignments,
        &state.world.tweets,
        &state.corpora.twitter_ed,
        vectors,
        spec.dataset_seed,
    )
}
