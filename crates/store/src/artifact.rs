//! Content-addressed artifact store for pipeline stage outputs.
//!
//! Each pipeline stage persists its output as one *artifact*: a file
//! named `<stage>-<fingerprint:016x>.art` whose fingerprint is a
//! stable 64-bit hash of the stage's configuration, its upstream
//! artifact fingerprints, and a per-stage code-version constant. The
//! store is deliberately dumb — it maps `(name, fingerprint)` to a
//! byte payload and back — so cache *policy* (what a fingerprint
//! covers, when to recompute) lives entirely with the caller.
//!
//! The on-disk frame reuses the WAL's defensive posture: an 8-byte
//! magic, the fingerprint, the payload length, and an FNV-1a checksum
//! guard every read. [`ArtifactStore::load`] answers `None` for *any*
//! defect — missing file, torn write, truncation, checksum or
//! fingerprint mismatch — because the caller can always recompute;
//! corruption must degrade to a cache miss, never to an error.
//! Writes go through a temp file + rename so a crash mid-write leaves
//! either the old artifact or a stray temp file, never a half-written
//! frame under the final name.
//!
//! Payload encoding is the caller's business via [`ByteWriter`] /
//! [`ByteReader`]: little-endian fixed-width integers and
//! `f64::to_bits` floats, so a decoded artifact is bit-identical to
//! the encoded value — the property the pipeline's warm-equals-cold
//! contract rests on.

use crate::error::Result;
use std::fmt;
use std::path::{Path, PathBuf};

/// Artifact frame magic: identifies the format and its version.
/// Bump the trailing digit when the frame layout changes.
const MAGIC: &[u8; 8] = b"NDART01\n";

/// Frame header size: magic + fingerprint + length + checksum.
const HEADER: usize = 8 + 8 + 8 + 8;

/// Stable 64-bit FNV-1a hash. Used both for artifact checksums and,
/// by the pipeline, as the fingerprint combiner — it is fully
/// deterministic across processes, platforms and std versions
/// (unlike `DefaultHasher`, which is documented to change).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Chains fingerprint words into one 64-bit digest: each word is
/// appended little-endian and the concatenation is FNV-1a hashed.
///
/// This is the streaming pipeline's per-slice cache-key combiner: a
/// stage's fingerprint at slice `k` chains its fingerprint at slice
/// `k − 1` (position matters — `chain_fingerprint(&[a, b])` and
/// `chain_fingerprint(&[b, a])` differ), so invalidating any slice
/// invalidates every later slice of the same stage without reading a
/// single artifact payload.
pub fn chain_fingerprint(words: &[u64]) -> u64 {
    let mut buf = Vec::with_capacity(words.len() * 8);
    for &w in words {
        buf.extend_from_slice(&w.to_le_bytes());
    }
    fnv1a64(&buf)
}

/// A decode failure inside an artifact payload.
///
/// Distinct from [`crate::StoreError`] on purpose: payload decoding
/// is infallible-by-recompute (the caller treats any variant as a
/// cache miss), while store errors are real I/O failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The payload ended before a read completed.
    Truncated {
        /// Bytes the read needed.
        need: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// The payload decoded but violated a structural invariant.
    Malformed(&'static str),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Truncated { need, have } => {
                write!(f, "artifact payload truncated: needed {need} bytes, had {have}")
            }
            ArtifactError::Malformed(what) => write!(f, "malformed artifact payload: {what}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Append-only byte encoder for artifact payloads.
///
/// All integers are little-endian; floats are stored as raw
/// `f64::to_bits` so encode→decode is bit-exact.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes encoded so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` (as `u64`, so payloads are portable across
    /// pointer widths).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its raw bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed slice of `f64`s.
    pub fn put_f64_slice(&mut self, xs: &[f64]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_f64(x);
        }
    }

    /// Appends a length-prefixed list of strings.
    pub fn put_str_list(&mut self, xs: &[String]) {
        self.put_usize(xs.len());
        for x in xs {
            self.put_str(x);
        }
    }
}

/// Cursor over an artifact payload; every read is bounds-checked and
/// fails with [`ArtifactError::Truncated`] rather than panicking, so
/// a corrupt payload can always be treated as a cache miss.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when the payload is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> std::result::Result<&'a [u8], ArtifactError> {
        if self.remaining() < n {
            return Err(ArtifactError::Truncated { need: n, have: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> std::result::Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> std::result::Result<u32, ArtifactError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> std::result::Result<u64, ArtifactError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a `usize` written by [`ByteWriter::put_usize`].
    pub fn usize(&mut self) -> std::result::Result<usize, ArtifactError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| ArtifactError::Malformed("usize out of range"))
    }

    /// Reads a length that must be backed by at least one byte per
    /// element still in the buffer — rejects corrupt giant lengths
    /// before any allocation happens.
    pub fn len_prefix(&mut self) -> std::result::Result<usize, ArtifactError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(ArtifactError::Truncated { need: n, have: self.remaining() });
        }
        Ok(n)
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn f64(&mut self) -> std::result::Result<f64, ArtifactError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> std::result::Result<String, ArtifactError> {
        let n = self.len_prefix()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ArtifactError::Malformed("string is not UTF-8"))
    }

    /// Reads a slice written by [`ByteWriter::put_f64_slice`].
    pub fn f64_vec(&mut self) -> std::result::Result<Vec<f64>, ArtifactError> {
        let n = self.usize()?;
        if n.saturating_mul(8) > self.remaining() {
            return Err(ArtifactError::Truncated {
                need: n.saturating_mul(8),
                have: self.remaining(),
            });
        }
        (0..n).map(|_| self.f64()).collect()
    }

    /// Reads a list written by [`ByteWriter::put_str_list`].
    pub fn str_list(&mut self) -> std::result::Result<Vec<String>, ArtifactError> {
        let n = self.len_prefix()?;
        (0..n).map(|_| self.str()).collect()
    }
}

/// A directory of content-addressed stage artifacts.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if needed) the artifact directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ArtifactStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ArtifactStore { dir })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the artifact file for `(name, fingerprint)`.
    pub fn path_for(&self, name: &str, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{name}-{fingerprint:016x}.art"))
    }

    /// Persists a payload under `(name, fingerprint)`, atomically
    /// (temp file + rename). Returns the total bytes written,
    /// header included.
    pub fn save(&self, name: &str, fingerprint: u64, payload: &[u8]) -> Result<u64> {
        let mut frame = Vec::with_capacity(HEADER + payload.len());
        frame.extend_from_slice(MAGIC);
        frame.extend_from_slice(&fingerprint.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let tmp = self.dir.join(format!(".{name}-{fingerprint:016x}.{}.tmp", std::process::id()));
        std::fs::write(&tmp, &frame)?;
        std::fs::rename(&tmp, self.path_for(name, fingerprint))?;
        Ok(frame.len() as u64)
    }

    /// Loads the payload for `(name, fingerprint)`.
    ///
    /// Answers `None` for *any* defect — missing, truncated, torn,
    /// checksum or fingerprint mismatch, unreadable — because every
    /// artifact is recomputable and corruption must act like a cache
    /// miss, never an error.
    pub fn load(&self, name: &str, fingerprint: u64) -> Option<Vec<u8>> {
        let frame = std::fs::read(self.path_for(name, fingerprint)).ok()?;
        if frame.len() < HEADER || &frame[..8] != MAGIC {
            return None;
        }
        let word = |at: usize| {
            u64::from_le_bytes([
                frame[at],
                frame[at + 1],
                frame[at + 2],
                frame[at + 3],
                frame[at + 4],
                frame[at + 5],
                frame[at + 6],
                frame[at + 7],
            ])
        };
        let (fp, len, checksum) = (word(8), word(16), word(24));
        if fp != fingerprint || len != (frame.len() - HEADER) as u64 {
            return None;
        }
        let payload = &frame[HEADER..];
        if fnv1a64(payload) != checksum {
            return None;
        }
        Some(payload.to_vec())
    }

    /// Writes a plain-text sidecar file (e.g. `run_report.json`) into
    /// the artifact directory.
    pub fn write_text(&self, file_name: &str, contents: &str) -> Result<()> {
        let tmp = self.dir.join(format!(".{file_name}.{}.tmp", std::process::id()));
        std::fs::write(&tmp, contents)?;
        std::fs::rename(&tmp, self.dir.join(file_name))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("ndart-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn writer_reader_roundtrip_is_bit_exact() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_usize(123_456);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_str("újság… 北京");
        w.put_f64_slice(&[1.5, -2.25, 1e-300]);
        w.put_str_list(&["a".to_string(), String::new()]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.usize().unwrap(), 123_456);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.str().unwrap(), "újság… 北京");
        let xs = r.f64_vec().unwrap();
        assert_eq!(xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>(), vec![
            1.5f64.to_bits(),
            (-2.25f64).to_bits(),
            1e-300f64.to_bits()
        ]);
        assert_eq!(r.str_list().unwrap(), vec!["a".to_string(), String::new()]);
        assert!(r.is_empty());
    }

    #[test]
    fn reader_reports_truncation_not_panics() {
        let mut w = ByteWriter::new();
        w.put_str("hello");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..bytes.len() - 2]);
        assert!(matches!(r.str(), Err(ArtifactError::Truncated { .. })));
        // A corrupt giant length prefix fails before allocating.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.str().is_err());
        let mut r = ByteReader::new(&bytes);
        assert!(r.f64_vec().is_err());
    }

    #[test]
    fn store_roundtrip_and_miss() {
        let dir = tmpdir("roundtrip");
        let store = ArtifactStore::open(&dir).unwrap();
        assert!(store.load("topics", 0xfeed).is_none(), "empty store misses");
        let payload = b"the topic model bytes".to_vec();
        let written = store.save("topics", 0xfeed, &payload).unwrap();
        assert_eq!(written as usize, HEADER + payload.len());
        assert_eq!(store.load("topics", 0xfeed).unwrap(), payload);
        // A different fingerprint is a different artifact.
        assert!(store.load("topics", 0xbeef).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_artifacts_read_as_misses() {
        let dir = tmpdir("corrupt");
        let store = ArtifactStore::open(&dir).unwrap();
        let payload = vec![42u8; 256];
        store.save("events", 0xabcd, &payload).unwrap();
        let path = store.path_for("events", 0xabcd);

        // Truncation (torn write).
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(store.load("events", 0xabcd).is_none(), "truncated frame must miss");

        // Flipped payload byte (checksum mismatch).
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        std::fs::write(&path, &flipped).unwrap();
        assert!(store.load("events", 0xabcd).is_none(), "bad checksum must miss");

        // Wrong magic.
        let mut bad_magic = full.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(store.load("events", 0xabcd).is_none(), "bad magic must miss");

        // Restoring the original frame heals the cache entry.
        std::fs::write(&path, &full).unwrap();
        assert_eq!(store.load("events", 0xabcd).unwrap(), payload);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned values: the fingerprint scheme must never drift
        // between versions, or every cache on disk silently invalidates.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"newsdiff"), fnv1a64(b"newsdiff"));
        assert_ne!(fnv1a64(b"newsdiff"), fnv1a64(b"newsdifg"));
    }

    #[test]
    fn chain_fingerprint_is_positional_and_stable() {
        assert_eq!(chain_fingerprint(&[]), fnv1a64(b""));
        assert_eq!(chain_fingerprint(&[1, 2]), chain_fingerprint(&[1, 2]));
        assert_ne!(chain_fingerprint(&[1, 2]), chain_fingerprint(&[2, 1]));
        // Chaining is not concatenation-ambiguous: [a] then b differs
        // from a fresh [b] then a.
        let a = chain_fingerprint(&[7]);
        let b = chain_fingerprint(&[9]);
        assert_ne!(chain_fingerprint(&[a, 9]), chain_fingerprint(&[b, 7]));
    }

    #[test]
    fn write_text_sidecar() {
        let dir = tmpdir("sidecar");
        let store = ArtifactStore::open(&dir).unwrap();
        store.write_text("run_report.json", "{\"ok\":true}").unwrap();
        let text = std::fs::read_to_string(dir.join("run_report.json")).unwrap();
        assert_eq!(text, "{\"ok\":true}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
