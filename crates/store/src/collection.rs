//! In-memory collection with secondary indexes.

use crate::error::{Result, StoreError};
use crate::query::{as_f64, lookup, Filter};
use crate::wal::WalRecord;
use serde_json::Value;
use std::collections::{BTreeMap, HashMap};

/// Total-ordered wrapper for `f64` index keys (NaN sorts last).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A named set of JSON documents with optional numeric secondary
/// indexes. Mutations are reported to the caller as [`WalRecord`]s via
/// the return values so the owning [`crate::db::Database`] can log
/// them.
#[derive(Debug, Default)]
pub struct Collection {
    name: String,
    docs: BTreeMap<u64, Value>,
    next_id: u64,
    /// field path -> (value -> doc ids)
    indexes: HashMap<String, BTreeMap<OrdF64, Vec<u64>>>,
    /// Pending WAL records since the last drain.
    pending: Vec<WalRecord>,
}

impl Collection {
    /// Creates an empty collection.
    pub fn new(name: impl Into<String>) -> Self {
        Collection { name: name.into(), ..Default::default() }
    }

    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// `true` when the collection holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Inserts a document (must be a JSON object), assigning and
    /// returning its `_id`. The id is also written into the stored
    /// document under `"_id"`.
    pub fn insert(&mut self, mut doc: Value) -> Result<u64> {
        let obj = doc.as_object_mut().ok_or(StoreError::NotAnObject)?;
        let id = self.next_id;
        self.next_id += 1;
        obj.insert("_id".to_string(), Value::from(id));
        self.index_doc(id, &doc);
        self.pending.push(WalRecord::Insert {
            collection: self.name.clone(),
            id,
            doc: doc.clone(),
        });
        self.docs.insert(id, doc);
        Ok(id)
    }

    /// Re-inserts a document during WAL replay (no new log record).
    pub(crate) fn apply_insert(&mut self, id: u64, doc: Value) {
        self.next_id = self.next_id.max(id + 1);
        self.index_doc(id, &doc);
        self.docs.insert(id, doc);
    }

    /// Removes a document by id.
    pub fn delete(&mut self, id: u64) -> Result<Value> {
        let doc = self.docs.remove(&id).ok_or(StoreError::NotFound { id })?;
        self.unindex_doc(id, &doc);
        self.pending.push(WalRecord::Delete { collection: self.name.clone(), id });
        Ok(doc)
    }

    /// Applies a delete during WAL replay.
    pub(crate) fn apply_delete(&mut self, id: u64) {
        if let Some(doc) = self.docs.remove(&id) {
            self.unindex_doc(id, &doc);
        }
    }

    /// Fetches a document by id.
    pub fn get(&self, id: u64) -> Option<&Value> {
        self.docs.get(&id)
    }

    /// Replaces a document's body, keeping its id. Logged to the WAL
    /// as delete + insert, so durability and index maintenance come
    /// for free.
    ///
    /// # Errors
    /// [`StoreError::NotFound`] when the id does not exist,
    /// [`StoreError::NotAnObject`] for a non-object body.
    pub fn update(&mut self, id: u64, mut doc: Value) -> Result<()> {
        let obj = doc.as_object_mut().ok_or(StoreError::NotAnObject)?;
        if !self.docs.contains_key(&id) {
            return Err(StoreError::NotFound { id });
        }
        obj.insert("_id".to_string(), Value::from(id));
        let old = self.docs.remove(&id).expect("checked above");
        self.unindex_doc(id, &old);
        self.pending.push(WalRecord::Delete { collection: self.name.clone(), id });
        self.index_doc(id, &doc);
        self.pending.push(WalRecord::Insert {
            collection: self.name.clone(),
            id,
            doc: doc.clone(),
        });
        self.docs.insert(id, doc);
        Ok(())
    }

    /// All matching documents (index-accelerated when the filter
    /// constrains an indexed numeric field).
    pub fn find(&self, filter: &Filter) -> Vec<&Value> {
        if let Some((path, lo, hi)) = filter.index_bounds() {
            if let Some(index) = self.indexes.get(path) {
                let mut out = Vec::new();
                for ids in index.range(OrdF64(lo)..=OrdF64(hi)).map(|(_, v)| v) {
                    for id in ids {
                        if let Some(doc) = self.docs.get(id) {
                            if filter.matches(doc) {
                                out.push(doc);
                            }
                        }
                    }
                }
                out.sort_by_key(|d| d.get("_id").and_then(Value::as_u64));
                return out;
            }
        }
        self.docs.values().filter(|d| filter.matches(d)).collect()
    }

    /// Number of matching documents.
    pub fn count(&self, filter: &Filter) -> usize {
        self.find(filter).len()
    }

    /// Iterator over all documents in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.docs.values()
    }

    /// Creates a numeric index on a dotted field path; existing
    /// documents are indexed immediately. Re-creating an index is a
    /// no-op.
    pub fn create_index(&mut self, path: impl Into<String>) {
        let path = path.into();
        if self.indexes.contains_key(&path) {
            return;
        }
        let mut index: BTreeMap<OrdF64, Vec<u64>> = BTreeMap::new();
        for (&id, doc) in &self.docs {
            if let Some(v) = lookup(doc, &path).and_then(as_f64) {
                index.entry(OrdF64(v)).or_default().push(id);
            }
        }
        self.indexes.insert(path, index);
    }

    /// `true` when the field has an index.
    pub fn has_index(&self, path: &str) -> bool {
        self.indexes.contains_key(path)
    }

    /// Drains mutation records accumulated since the last call (the
    /// database logs these to its WAL).
    pub(crate) fn drain_pending(&mut self) -> Vec<WalRecord> {
        std::mem::take(&mut self.pending)
    }

    fn index_doc(&mut self, id: u64, doc: &Value) {
        for (path, index) in &mut self.indexes {
            if let Some(v) = lookup(doc, path).and_then(as_f64) {
                index.entry(OrdF64(v)).or_default().push(id);
            }
        }
    }

    fn unindex_doc(&mut self, id: u64, doc: &Value) {
        for (path, index) in &mut self.indexes {
            if let Some(v) = lookup(doc, path).and_then(as_f64) {
                if let Some(ids) = index.get_mut(&OrdF64(v)) {
                    ids.retain(|&x| x != id);
                    if ids.is_empty() {
                        index.remove(&OrdF64(v));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn seeded() -> Collection {
        let mut c = Collection::new("tweets");
        for i in 0..10 {
            c.insert(json!({"text": format!("tweet {i}"), "likes": i * 10})).unwrap();
        }
        c
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut c = Collection::new("x");
        let a = c.insert(json!({"v": 1})).unwrap();
        let b = c.insert(json!({"v": 2})).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(c.get(0).unwrap()["_id"], json!(0));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_rejects_non_objects() {
        let mut c = Collection::new("x");
        assert!(matches!(c.insert(json!([1, 2])), Err(StoreError::NotAnObject)));
        assert!(matches!(c.insert(json!("str")), Err(StoreError::NotAnObject)));
    }

    #[test]
    fn delete_removes_and_errors_on_missing() {
        let mut c = seeded();
        let doc = c.delete(3).unwrap();
        assert_eq!(doc["likes"], json!(30));
        assert_eq!(c.len(), 9);
        assert!(matches!(c.delete(3), Err(StoreError::NotFound { id: 3 })));
    }

    #[test]
    fn find_full_scan() {
        let c = seeded();
        let hot = c.find(&Filter::range("likes", Some(50.0), None));
        assert_eq!(hot.len(), 5);
        assert_eq!(c.count(&Filter::contains("text", "tweet")), 10);
    }

    #[test]
    fn index_scan_matches_full_scan() {
        let mut c = seeded();
        let filter = Filter::range("likes", Some(20.0), Some(60.0));
        let full: Vec<u64> =
            c.find(&filter).iter().map(|d| d["_id"].as_u64().unwrap()).collect();
        c.create_index("likes");
        assert!(c.has_index("likes"));
        let indexed: Vec<u64> =
            c.find(&filter).iter().map(|d| d["_id"].as_u64().unwrap()).collect();
        assert_eq!(full, indexed);
    }

    #[test]
    fn index_maintained_across_mutations() {
        let mut c = seeded();
        c.create_index("likes");
        c.insert(json!({"text": "new", "likes": 35})).unwrap();
        c.delete(5).unwrap(); // likes = 50
        let filter = Filter::range("likes", Some(30.0), Some(60.0));
        let got: Vec<i64> =
            c.find(&filter).iter().map(|d| d["likes"].as_i64().unwrap()).collect();
        assert_eq!(got, vec![30, 40, 60, 35]);
    }

    #[test]
    fn index_with_equality_filter() {
        let mut c = seeded();
        c.create_index("likes");
        let got = c.find(&Filter::eq("likes", 40));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0]["text"], json!("tweet 4"));
    }

    #[test]
    fn pending_records_drained() {
        let mut c = Collection::new("x");
        c.insert(json!({"a": 1})).unwrap();
        c.delete(0).unwrap();
        let pending = c.drain_pending();
        assert_eq!(pending.len(), 2);
        assert!(matches!(pending[0], WalRecord::Insert { id: 0, .. }));
        assert!(matches!(pending[1], WalRecord::Delete { id: 0, .. }));
        assert!(c.drain_pending().is_empty());
    }

    #[test]
    fn apply_insert_sets_next_id() {
        let mut c = Collection::new("x");
        c.apply_insert(41, json!({"_id": 41}));
        let id = c.insert(json!({})).unwrap();
        assert_eq!(id, 42);
    }

    #[test]
    fn update_replaces_body_and_maintains_index() {
        let mut c = seeded();
        c.create_index("likes");
        c.update(4, json!({"text": "edited", "likes": 9_999})).unwrap();
        assert_eq!(c.get(4).unwrap()["text"], json!("edited"));
        assert_eq!(c.get(4).unwrap()["_id"], json!(4));
        // Old index entry gone, new one live.
        assert!(c.find(&Filter::eq("likes", 40)).is_empty());
        let hot = c.find(&Filter::eq("likes", 9_999));
        assert_eq!(hot.len(), 1);
        assert_eq!(c.len(), 10, "update must not change cardinality");
    }

    #[test]
    fn update_missing_or_invalid() {
        let mut c = seeded();
        assert!(matches!(c.update(99, json!({})), Err(StoreError::NotFound { id: 99 })));
        assert!(matches!(c.update(1, json!([1])), Err(StoreError::NotAnObject)));
    }

    #[test]
    fn update_is_logged_for_durability() {
        let mut c = Collection::new("x");
        c.insert(json!({"v": 1})).unwrap();
        c.drain_pending();
        c.update(0, json!({"v": 2})).unwrap();
        let pending = c.drain_pending();
        assert_eq!(pending.len(), 2);
        assert!(matches!(pending[0], WalRecord::Delete { id: 0, .. }));
        assert!(matches!(&pending[1], WalRecord::Insert { id: 0, doc, .. } if doc["v"] == json!(2)));
    }

    #[test]
    fn documents_missing_indexed_field_skipped() {
        let mut c = Collection::new("x");
        c.insert(json!({"likes": 5})).unwrap();
        c.insert(json!({"other": true})).unwrap();
        c.create_index("likes");
        let got = c.find(&Filter::range("likes", Some(0.0), Some(10.0)));
        assert_eq!(got.len(), 1);
    }
}
