//! The database: named collections + WAL + snapshot persistence.
//!
//! Layout on disk (one directory per database):
//!
//! ```text
//! <dir>/snapshot.json   # full state at the last checkpoint
//! <dir>/wal.log         # mutations since the snapshot
//! ```
//!
//! `open` loads the snapshot (if any) and replays the WAL on top;
//! `persist` flushes pending mutations to the WAL and fsyncs;
//! `compact` rewrites the snapshot and truncates the WAL.

use crate::collection::Collection;
use crate::error::Result;
use crate::wal::{Wal, WalRecord};
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// An embedded document database.
#[derive(Debug)]
pub struct Database {
    dir: PathBuf,
    collections: BTreeMap<String, Collection>,
    wal: Wal,
    generation: u64,
}

impl Database {
    /// Opens (creating if needed) a database in `dir`, replaying any
    /// existing snapshot and WAL.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut collections: BTreeMap<String, Collection> = BTreeMap::new();
        let mut generation = 0;

        // Load snapshot.
        let snap_path = dir.join("snapshot.json");
        if snap_path.exists() {
            let raw = std::fs::read(&snap_path)?;
            let snap: Value = serde_json::from_slice(&raw)?;
            generation = snap["generation"].as_u64().unwrap_or(0);
            if let Some(colls) = snap["collections"].as_object() {
                for (name, docs) in colls {
                    let coll = collections
                        .entry(name.clone())
                        .or_insert_with(|| Collection::new(name.clone()));
                    if let Some(items) = docs.as_array() {
                        for doc in items {
                            if let Some(id) = doc.get("_id").and_then(Value::as_u64) {
                                coll.apply_insert(id, doc.clone());
                            }
                        }
                    }
                }
            }
        }

        // Replay WAL on top.
        let wal_path = dir.join("wal.log");
        for record in Wal::replay(&wal_path)? {
            match record {
                WalRecord::Insert { collection, id, doc } => {
                    collections
                        .entry(collection.clone())
                        .or_insert_with(|| Collection::new(collection))
                        .apply_insert(id, doc);
                }
                WalRecord::Delete { collection, id } => {
                    if let Some(c) = collections.get_mut(&collection) {
                        c.apply_delete(id);
                    }
                }
                WalRecord::Checkpoint { generation: g } => generation = generation.max(g),
            }
        }

        let wal = Wal::open(wal_path)?;
        Ok(Database { dir, collections, wal, generation })
    }

    /// Directory backing this database.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Gets (creating if absent) a collection by name.
    pub fn collection(&mut self, name: &str) -> &mut Collection {
        self.collections
            .entry(name.to_string())
            .or_insert_with(|| Collection::new(name.to_string()))
    }

    /// Read-only access to a collection, if it exists.
    pub fn get_collection(&self, name: &str) -> Option<&Collection> {
        self.collections.get(name)
    }

    /// Names of all collections.
    pub fn collection_names(&self) -> Vec<&str> {
        self.collections.keys().map(String::as_str).collect()
    }

    /// Flushes pending mutations to the WAL and fsyncs.
    pub fn persist(&mut self) -> Result<()> {
        for coll in self.collections.values_mut() {
            for record in coll.drain_pending() {
                self.wal.append(&record)?;
            }
        }
        self.wal.sync()
    }

    /// Writes a fresh snapshot and truncates the WAL. Implies
    /// [`Database::persist`] semantics for pending mutations (they end
    /// up in the snapshot).
    pub fn compact(&mut self) -> Result<()> {
        // Drop pending records — the snapshot captures their effects.
        for coll in self.collections.values_mut() {
            coll.drain_pending();
        }
        self.generation += 1;
        let mut colls = serde_json::Map::new();
        for (name, coll) in &self.collections {
            let docs: Vec<Value> = coll.iter().cloned().collect();
            colls.insert(name.clone(), Value::Array(docs));
        }
        let snap = serde_json::json!({
            "generation": self.generation,
            "collections": Value::Object(colls),
        });
        // Write-then-rename for atomicity.
        let tmp = self.dir.join("snapshot.json.tmp");
        std::fs::write(&tmp, serde_json::to_vec(&snap)?)?;
        std::fs::rename(&tmp, self.dir.join("snapshot.json"))?;
        self.wal.reset()?;
        self.wal.append(&WalRecord::Checkpoint { generation: self.generation })?;
        self.wal.sync()
    }

    /// Snapshot generation (increments on every [`Database::compact`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Filter;
    use serde_json::json;

    fn tmpdir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("nddb-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn insert_persist_reopen() {
        let dir = tmpdir("reopen");
        {
            let mut db = Database::open(&dir).unwrap();
            let tweets = db.collection("tweets");
            tweets.insert(json!({"text": "hello", "likes": 5})).unwrap();
            tweets.insert(json!({"text": "world", "likes": 500})).unwrap();
            db.persist().unwrap();
        }
        {
            let db = Database::open(&dir).unwrap();
            let tweets = db.get_collection("tweets").unwrap();
            assert_eq!(tweets.len(), 2);
            let hot = tweets.find(&Filter::range("likes", Some(100.0), None));
            assert_eq!(hot.len(), 1);
            assert_eq!(hot[0]["text"], json!("world"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deletes_survive_reopen() {
        let dir = tmpdir("deletes");
        {
            let mut db = Database::open(&dir).unwrap();
            let c = db.collection("c");
            let id = c.insert(json!({"v": 1})).unwrap();
            c.insert(json!({"v": 2})).unwrap();
            c.delete(id).unwrap();
            db.persist().unwrap();
        }
        {
            let db = Database::open(&dir).unwrap();
            assert_eq!(db.get_collection("c").unwrap().len(), 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unpersisted_mutations_lost_on_reopen() {
        let dir = tmpdir("unpersisted");
        {
            let mut db = Database::open(&dir).unwrap();
            db.collection("c").insert(json!({"v": 1})).unwrap();
            db.persist().unwrap();
            db.collection("c").insert(json!({"v": 2})).unwrap();
            // no persist for the second insert
        }
        {
            let db = Database::open(&dir).unwrap();
            assert_eq!(db.get_collection("c").unwrap().len(), 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_then_reopen() {
        let dir = tmpdir("compact");
        {
            let mut db = Database::open(&dir).unwrap();
            for i in 0..20 {
                db.collection("news").insert(json!({"i": i})).unwrap();
            }
            db.compact().unwrap();
            // More writes after the snapshot.
            db.collection("news").insert(json!({"i": 100})).unwrap();
            db.persist().unwrap();
            assert_eq!(db.generation(), 1);
        }
        {
            let db = Database::open(&dir).unwrap();
            assert_eq!(db.get_collection("news").unwrap().len(), 21);
            assert_eq!(db.generation(), 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ids_continue_after_reopen() {
        let dir = tmpdir("ids");
        {
            let mut db = Database::open(&dir).unwrap();
            db.collection("c").insert(json!({})).unwrap();
            db.persist().unwrap();
        }
        {
            let mut db = Database::open(&dir).unwrap();
            let id = db.collection("c").insert(json!({})).unwrap();
            assert_eq!(id, 1, "ids must not be reused after reopen");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multiple_collections() {
        let dir = tmpdir("multi");
        let mut db = Database::open(&dir).unwrap();
        db.collection("a").insert(json!({})).unwrap();
        db.collection("b").insert(json!({})).unwrap();
        assert_eq!(db.collection_names(), vec!["a", "b"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_database_reopen() {
        let dir = tmpdir("empty");
        {
            Database::open(&dir).unwrap();
        }
        let db = Database::open(&dir).unwrap();
        assert!(db.collection_names().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
