//! Store error types.

use std::fmt;

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Errors produced by the document store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A document or WAL frame failed to (de)serialize.
    Serialization(serde_json::Error),
    /// A document to insert was not a JSON object.
    NotAnObject,
    /// The WAL contained a malformed frame at the given byte offset.
    CorruptWal {
        /// Byte offset of the bad frame.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// No document with the requested id.
    NotFound {
        /// The missing id.
        id: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Serialization(e) => write!(f, "serialization error: {e}"),
            StoreError::NotAnObject => write!(f, "documents must be JSON objects"),
            StoreError::CorruptWal { offset, reason } => {
                write!(f, "corrupt WAL frame at byte {offset}: {reason}")
            }
            StoreError::NotFound { id } => write!(f, "document {id} not found"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Serialization(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Serialization(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StoreError::NotAnObject.to_string().contains("JSON objects"));
        assert!(StoreError::NotFound { id: 7 }.to_string().contains('7'));
        let e = StoreError::CorruptWal { offset: 16, reason: "bad length".into() };
        assert!(e.to_string().contains("byte 16"));
    }

    #[test]
    fn conversions() {
        let io: StoreError = std::io::Error::other("x").into();
        assert!(matches!(io, StoreError::Io(_)));
        let js: StoreError =
            serde_json::from_str::<serde_json::Value>("not json").unwrap_err().into();
        assert!(matches!(js, StoreError::Serialization(_)));
    }
}
