//! # nd-store
//!
//! An embedded document store — the MongoDB substitute of DESIGN.md
//! §1. The paper's pipeline stores raw news articles, tweets, user
//! metadata and preprocessed corpora in MongoDB collections (§4.1);
//! this crate provides the same surface:
//!
//! * JSON documents (`serde_json::Value` objects) with auto-assigned
//!   `_id`s, grouped into named [collections](collection::Collection);
//! * [`Filter`] queries over dotted field paths
//!   (equality, ranges, string containment, and/or composition);
//! * optional secondary [indexes](collection::Collection::create_index)
//!   that accelerate equality and range scans;
//! * durability via a length-prefixed [write-ahead log](wal) with
//!   snapshot compaction — a [`Database`] reopened from
//!   disk replays the log and serves identical query results;
//! * a content-addressed [artifact store](artifact) holding
//!   fingerprinted pipeline stage outputs, with checksummed frames
//!   where any corruption reads back as a cache miss.
//!
//! ```
//! use nd_store::{Database, Filter};
//! use serde_json::json;
//!
//! let dir = std::env::temp_dir().join(format!("ndstore-doc-{}", std::process::id()));
//! let mut db = Database::open(&dir).unwrap();
//! let tweets = db.collection("tweets");
//! tweets.insert(json!({"text": "brexit vote", "likes": 120})).unwrap();
//! tweets.insert(json!({"text": "derby race", "likes": 3})).unwrap();
//! let hot = tweets.find(&Filter::range("likes", Some(100.0), None));
//! assert_eq!(hot.len(), 1);
//! db.persist().unwrap();
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifact;
pub mod collection;
pub mod db;
pub mod error;
pub mod query;
pub mod wal;

pub use artifact::{chain_fingerprint, fnv1a64, ArtifactError, ArtifactStore, ByteReader, ByteWriter};
pub use collection::Collection;
pub use db::Database;
pub use error::{Result, StoreError};
pub use query::Filter;
