//! Filter queries over JSON documents.
//!
//! Filters address fields by dotted path (`"user.followers"`), compare
//! numbers with cross-type coercion (an integer `5` equals a float
//! `5.0`), and compose with [`Filter::And`] / [`Filter::Or`].

use serde_json::Value;

/// A predicate over a JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Every document matches.
    All,
    /// Field equals the value (numeric comparison coerces int/float).
    Eq(String, Value),
    /// Numeric field within `[min, max]` (either bound optional).
    Range {
        /// Dotted field path.
        path: String,
        /// Inclusive lower bound.
        min: Option<f64>,
        /// Inclusive upper bound.
        max: Option<f64>,
    },
    /// String field contains the needle (case-sensitive).
    Contains(String, String),
    /// Field exists (any value, including null).
    Exists(String),
    /// All sub-filters match.
    And(Vec<Filter>),
    /// At least one sub-filter matches.
    Or(Vec<Filter>),
    /// Sub-filter does not match.
    Not(Box<Filter>),
}

impl Filter {
    /// Equality shorthand.
    pub fn eq(path: impl Into<String>, value: impl Into<Value>) -> Filter {
        Filter::Eq(path.into(), value.into())
    }

    /// Range shorthand.
    pub fn range(path: impl Into<String>, min: Option<f64>, max: Option<f64>) -> Filter {
        Filter::Range { path: path.into(), min, max }
    }

    /// Substring shorthand.
    pub fn contains(path: impl Into<String>, needle: impl Into<String>) -> Filter {
        Filter::Contains(path.into(), needle.into())
    }

    /// Evaluates the filter against a document.
    pub fn matches(&self, doc: &Value) -> bool {
        match self {
            Filter::All => true,
            Filter::Eq(path, want) => match lookup(doc, path) {
                Some(got) => values_equal(got, want),
                None => false,
            },
            Filter::Range { path, min, max } => match lookup(doc, path).and_then(as_f64) {
                Some(v) => min.is_none_or(|m| v >= m) && max.is_none_or(|m| v <= m),
                None => false,
            },
            Filter::Contains(path, needle) => match lookup(doc, path) {
                Some(Value::String(s)) => s.contains(needle.as_str()),
                Some(Value::Array(items)) => items
                    .iter()
                    .any(|v| matches!(v, Value::String(s) if s.contains(needle.as_str()))),
                _ => false,
            },
            Filter::Exists(path) => lookup(doc, path).is_some(),
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
            Filter::Not(f) => !f.matches(doc),
        }
    }

    /// If this filter (possibly inside a top-level `And`) constrains a
    /// single field by equality or range, returns
    /// `(path, min, max)` usable for an index scan. Equality returns
    /// `min == max`. Non-numeric equality returns `None`.
    pub fn index_bounds(&self) -> Option<(&str, f64, f64)> {
        match self {
            Filter::Eq(path, v) => as_f64(v).map(|x| (path.as_str(), x, x)),
            Filter::Range { path, min, max } => Some((
                path.as_str(),
                min.unwrap_or(f64::NEG_INFINITY),
                max.unwrap_or(f64::INFINITY),
            )),
            Filter::And(fs) => fs.iter().find_map(|f| f.index_bounds()),
            _ => None,
        }
    }
}

/// Dotted-path field lookup.
pub fn lookup<'a>(doc: &'a Value, path: &str) -> Option<&'a Value> {
    let mut cur = doc;
    for part in path.split('.') {
        cur = cur.get(part)?;
    }
    Some(cur)
}

/// Numeric coercion.
pub fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Number(n) => n.as_f64(),
        _ => None,
    }
}

fn values_equal(a: &Value, b: &Value) -> bool {
    match (as_f64(a), as_f64(b)) {
        (Some(x), Some(y)) => x == y,
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc() -> Value {
        json!({
            "text": "brexit vote looms",
            "likes": 150,
            "score": 0.75,
            "user": {"name": "alice", "followers": 12000},
            "tags": ["politics", "uk"],
            "deleted": null
        })
    }

    #[test]
    fn all_matches_everything() {
        assert!(Filter::All.matches(&doc()));
    }

    #[test]
    fn eq_on_nested_path() {
        assert!(Filter::eq("user.name", "alice").matches(&doc()));
        assert!(!Filter::eq("user.name", "bob").matches(&doc()));
        assert!(!Filter::eq("user.missing", "x").matches(&doc()));
    }

    #[test]
    fn eq_numeric_coercion() {
        assert!(Filter::eq("likes", 150.0).matches(&doc()));
        assert!(Filter::eq("likes", 150).matches(&doc()));
        assert!(Filter::eq("score", 0.75).matches(&doc()));
    }

    #[test]
    fn range_bounds() {
        assert!(Filter::range("likes", Some(100.0), Some(200.0)).matches(&doc()));
        assert!(Filter::range("likes", Some(150.0), None).matches(&doc()));
        assert!(!Filter::range("likes", Some(151.0), None).matches(&doc()));
        assert!(Filter::range("likes", None, Some(150.0)).matches(&doc()));
        assert!(!Filter::range("text", Some(0.0), None).matches(&doc()), "non-numeric");
    }

    #[test]
    fn contains_string_and_array() {
        assert!(Filter::contains("text", "brexit").matches(&doc()));
        assert!(!Filter::contains("text", "derby").matches(&doc()));
        assert!(Filter::contains("tags", "politics").matches(&doc()));
    }

    #[test]
    fn exists_includes_null() {
        assert!(Filter::Exists("deleted".into()).matches(&doc()));
        assert!(!Filter::Exists("ghost".into()).matches(&doc()));
    }

    #[test]
    fn boolean_composition() {
        let f = Filter::And(vec![
            Filter::eq("user.name", "alice"),
            Filter::range("likes", Some(100.0), None),
        ]);
        assert!(f.matches(&doc()));
        let g = Filter::Or(vec![Filter::eq("user.name", "bob"), Filter::contains("text", "vote")]);
        assert!(g.matches(&doc()));
        assert!(!Filter::Not(Box::new(Filter::All)).matches(&doc()));
        assert!(Filter::And(vec![]).matches(&doc()), "empty And is true");
        assert!(!Filter::Or(vec![]).matches(&doc()), "empty Or is false");
    }

    #[test]
    fn index_bounds_extraction() {
        assert_eq!(
            Filter::range("likes", Some(1.0), Some(5.0)).index_bounds(),
            Some(("likes", 1.0, 5.0))
        );
        let eq = Filter::eq("likes", 3);
        let (p, lo, hi) = eq.index_bounds().unwrap();
        assert_eq!((p, lo, hi), ("likes", 3.0, 3.0));
        let and = Filter::And(vec![Filter::contains("text", "x"), Filter::range("t", Some(2.0), None)]);
        let (p, lo, hi) = and.index_bounds().unwrap();
        assert_eq!(p, "t");
        assert_eq!(lo, 2.0);
        assert!(hi.is_infinite());
        assert_eq!(Filter::contains("text", "x").index_bounds(), None);
        assert_eq!(Filter::eq("name", "alice").index_bounds(), None);
    }

    #[test]
    fn lookup_paths() {
        let d = doc();
        assert_eq!(lookup(&d, "user.followers").and_then(as_f64), Some(12000.0));
        assert!(lookup(&d, "a.b.c").is_none());
    }
}
