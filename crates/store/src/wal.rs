//! Write-ahead log: length-prefixed JSON frames.
//!
//! Each frame is `[u32 little-endian length][payload bytes]` where the
//! payload is a serialized [`WalRecord`]. On open, the log is replayed
//! to rebuild in-memory state; a truncated trailing frame (torn write)
//! is tolerated and the log is trimmed to the last complete frame, but
//! a malformed frame in the middle is reported as corruption.

use crate::error::{Result, StoreError};
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// One logged mutation.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum WalRecord {
    /// Document inserted into a collection.
    Insert {
        /// Collection name.
        collection: String,
        /// Assigned document id.
        id: u64,
        /// Document body.
        doc: serde_json::Value,
    },
    /// Document removed.
    Delete {
        /// Collection name.
        collection: String,
        /// Document id.
        id: u64,
    },
    /// Snapshot barrier: everything before this point is also captured
    /// in the snapshot file with the given generation.
    Checkpoint {
        /// Snapshot generation number.
        generation: u64,
    },
}

/// An append-only write-ahead log on disk.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
}

/// Maximum frame size we will accept on replay (64 MiB); anything
/// larger is treated as corruption rather than an allocation request.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

impl Wal {
    /// Opens (creating if absent) the log at `path`.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new().create(true).append(true).read(true).open(&path)?;
        Ok(Wal { path, file })
    }

    /// Appends a record. The frame hits the OS immediately
    /// (`write_all`); call [`Wal::sync`] for fsync durability.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let payload = serde_json::to_vec(record)?;
        let mut frame = BytesMut::with_capacity(4 + payload.len());
        frame.put_u32_le(payload.len() as u32);
        frame.put_slice(&payload);
        self.file.write_all(&frame)?;
        Ok(())
    }

    /// Forces the log to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Replays every complete frame in the log. A truncated final
    /// frame is ignored (torn write); mid-log corruption is an error.
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<WalRecord>> {
        let path = path.as_ref();
        if !path.exists() {
            return Ok(Vec::new());
        }
        let mut raw = Vec::new();
        File::open(path)?.read_to_end(&mut raw)?;
        let mut buf = &raw[..];
        let mut records = Vec::new();
        let mut offset = 0u64;
        while buf.remaining() >= 4 {
            let len = (&buf[..4]).get_u32_le();
            if len > MAX_FRAME {
                return Err(StoreError::CorruptWal {
                    offset,
                    reason: format!("frame length {len} exceeds limit"),
                });
            }
            if buf.remaining() < 4 + len as usize {
                // Torn final write: stop replay here.
                break;
            }
            buf.advance(4);
            let payload = &buf[..len as usize];
            match serde_json::from_slice::<WalRecord>(payload) {
                Ok(rec) => records.push(rec),
                Err(e) => {
                    // Malformed payload in a *complete* frame that is
                    // not the final one = real corruption; a bad final
                    // frame is treated as torn.
                    if buf.remaining() == len as usize {
                        break;
                    }
                    return Err(StoreError::CorruptWal { offset, reason: e.to_string() });
                }
            }
            buf.advance(len as usize);
            offset += 4 + len as u64;
        }
        Ok(records)
    }

    /// Truncates the log (used after snapshot compaction).
    pub fn reset(&mut self) -> Result<()> {
        self.file = OpenOptions::new().create(true).write(true).truncate(true).open(&self.path)?;
        // Reopen in append mode for subsequent writes.
        self.file = OpenOptions::new().append(true).read(true).open(&self.path)?;
        Ok(())
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ndwal-{}-{}", std::process::id(), name))
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert { collection: "news".into(), id: 1, doc: json!({"t": "a"}) },
            WalRecord::Insert { collection: "tweets".into(), id: 2, doc: json!({"t": "b"}) },
            WalRecord::Delete { collection: "news".into(), id: 1 },
            WalRecord::Checkpoint { generation: 1 },
        ]
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            wal.sync().unwrap();
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, sample_records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let path = tmp("missing");
        std::fs::remove_file(&path).ok();
        assert!(Wal::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_final_frame_tolerated() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
        }
        // Chop the last 3 bytes to simulate a torn write.
        let mut raw = std::fs::read(&path).unwrap();
        raw.truncate(raw.len() - 3);
        std::fs::write(&path, &raw).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), sample_records().len() - 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn absurd_length_is_corruption() {
        let path = tmp("badlen");
        std::fs::write(&path, u32::MAX.to_le_bytes()).unwrap();
        assert!(matches!(Wal::replay(&path), Err(StoreError::CorruptWal { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_truncates() {
        let path = tmp("reset");
        std::fs::remove_file(&path).ok();
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&sample_records()[0]).unwrap();
        wal.reset().unwrap();
        assert!(Wal::replay(&path).unwrap().is_empty());
        // Still appendable after reset.
        wal.append(&sample_records()[1]).unwrap();
        assert_eq!(Wal::replay(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appends_after_reopen_preserve_existing() {
        let path = tmp("reopen");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&sample_records()[0]).unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&sample_records()[1]).unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
