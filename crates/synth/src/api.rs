//! Simulated collection APIs (paper §4.1).
//!
//! The deployed system polls News River and NewsAPI for articles and
//! the Twitter API for tweets every two hours, and runs a scraper to
//! recover full article bodies (NewsAPI truncates content to the first
//! paragraph). These simulators reproduce that surface — pagination
//! limits, truncation, keyword search — over a generated [`World`],
//! so `nd-core::collect` exercises the same logic the paper's
//! collection module needed.

use crate::world::{NewsArticle, Tweet, World};

/// Page size both news APIs return ("the latest 100 news").
pub const NEWS_PAGE: usize = 100;
/// Twitter search page size.
pub const TWEET_PAGE: usize = 100;

/// Simulated News River / NewsAPI endpoint.
///
/// Returns articles in ascending time order with the body truncated to
/// the first paragraph, like the real NewsAPI.
#[derive(Debug, Clone, Copy)]
pub struct NewsApi<'w> {
    world: &'w World,
}

/// A truncated article as the news API returns it.
#[derive(Debug, Clone)]
pub struct NewsApiItem {
    /// Article id (doubles as the "url" the scraper resolves).
    pub id: u64,
    /// Publication time.
    pub timestamp: u64,
    /// Source handle.
    pub source: String,
    /// Headline.
    pub title: String,
    /// First paragraph only.
    pub description: String,
}

impl<'w> NewsApi<'w> {
    /// Creates the endpoint over a world.
    pub fn new(world: &'w World) -> Self {
        NewsApi { world }
    }

    /// Latest ≤ 100 articles with `timestamp > since`, ascending.
    pub fn latest(&self, since: u64) -> Vec<NewsApiItem> {
        self.world
            .articles
            .iter()
            .filter(|a| a.timestamp > since)
            .take(NEWS_PAGE)
            .map(|a| NewsApiItem {
                id: a.id,
                timestamp: a.timestamp,
                source: a.source.clone(),
                title: a.title.clone(),
                description: a.snippet.clone(),
            })
            .collect()
    }
}

/// The scraper that recovers full article content from the article
/// "url" (paper §4.1: "We developed a scrapper to obtain the entire
/// content of the article").
#[derive(Debug, Clone, Copy)]
pub struct Scraper<'w> {
    world: &'w World,
}

impl<'w> Scraper<'w> {
    /// Creates the scraper over a world.
    pub fn new(world: &'w World) -> Self {
        Scraper { world }
    }

    /// Fetches the full body for an article id; `None` for a dead
    /// link.
    pub fn fetch(&self, id: u64) -> Option<&'w NewsArticle> {
        self.world.articles.get(id as usize).filter(|a| a.id == id)
    }
}

/// Simulated Twitter search endpoint.
#[derive(Debug, Clone, Copy)]
pub struct TwitterApi<'w> {
    world: &'w World,
}

impl<'w> TwitterApi<'w> {
    /// Creates the endpoint over a world.
    pub fn new(world: &'w World) -> Self {
        TwitterApi { world }
    }

    /// Tweets with `timestamp > since` whose text contains any of the
    /// `keywords` (case-insensitive); ascending, ≤ 100 per page.
    /// An empty keyword list matches everything.
    pub fn search(&self, keywords: &[&str], since: u64) -> Vec<&'w Tweet> {
        let lower: Vec<String> = keywords.iter().map(|k| k.to_lowercase()).collect();
        self.world
            .tweets
            .iter()
            .filter(|t| t.timestamp > since)
            .filter(|t| {
                if lower.is_empty() {
                    return true;
                }
                let text = t.text.to_lowercase();
                lower.iter().any(|k| text.contains(k))
            })
            .take(TWEET_PAGE)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::small())
    }

    #[test]
    fn news_pages_capped_and_ordered() {
        let w = world();
        let api = NewsApi::new(&w);
        let page = api.latest(0);
        assert_eq!(page.len(), NEWS_PAGE);
        for pair in page.windows(2) {
            assert!(pair[0].timestamp <= pair[1].timestamp);
        }
    }

    #[test]
    fn pagination_walks_forward_to_exhaustion() {
        let w = world();
        let api = NewsApi::new(&w);
        let mut since = 0;
        let mut total = 0;
        loop {
            let page = api.latest(since);
            if page.is_empty() {
                break;
            }
            total += page.len();
            since = page.last().unwrap().timestamp;
        }
        // Pagination by timestamp can skip articles sharing the same
        // second at a page boundary; we must still collect nearly all.
        assert!(
            total >= w.articles.len() * 99 / 100,
            "collected {total} of {}",
            w.articles.len()
        );
    }

    #[test]
    fn api_returns_truncated_content() {
        let w = world();
        let api = NewsApi::new(&w);
        let scraper = Scraper::new(&w);
        let item = &api.latest(0)[0];
        let full = scraper.fetch(item.id).unwrap();
        assert_eq!(item.description, full.snippet);
        assert!(full.content.len() >= item.description.len());
    }

    #[test]
    fn scraper_dead_link() {
        let w = world();
        assert!(Scraper::new(&w).fetch(u64::MAX).is_none());
    }

    #[test]
    fn twitter_search_filters_by_keyword() {
        let w = world();
        let api = TwitterApi::new(&w);
        let hits = api.search(&["brexit"], 0);
        assert!(!hits.is_empty());
        for t in &hits {
            assert!(t.text.to_lowercase().contains("brexit"));
        }
    }

    #[test]
    fn twitter_search_empty_keywords_matches_all() {
        let w = world();
        let api = TwitterApi::new(&w);
        assert_eq!(api.search(&[], 0).len(), TWEET_PAGE);
    }

    #[test]
    fn twitter_search_since_excludes_old() {
        let w = world();
        let api = TwitterApi::new(&w);
        let first = api.search(&[], 0)[0].timestamp;
        let later = api.search(&[], first);
        assert!(later.iter().all(|t| t.timestamp > first));
    }
}
