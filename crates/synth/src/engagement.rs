//! The engagement ground truth: likes and retweets.
//!
//! The paper's headline result (§5.6) is that prediction accuracy
//! improves by roughly +0.05 when the tweet embedding is augmented
//! with author/follower metadata and the day of the week. For that to
//! be a *falsifiable* property of our reproduction, the synthetic
//! engagement generator must actually encode those dependencies:
//!
//! ```text
//! z = w_c·content + w_f·followers + w_d·day-of-week + w_n·noise
//! ```
//!
//! where `content` is the tweet's event virality (recoverable from the
//! document embedding), `followers` is the author's Table 2 bucket,
//! and `day-of-week` is a weekly consumption profile (weekend boost,
//! cf. Bentley et al. 2019, reference 3 of the paper). The latent score is
//! thresholded into the three Table 2 classes and a concrete count is
//! sampled inside the class range.
//!
//! With the default weights, content alone bounds a classifier in the
//! mid-0.7s while content+metadata reaches the mid-0.8s — the same
//! *shape* as the paper's Tables 8–9.

use crate::time::day_of_week;
use nd_linalg::rng::SplitMix64;

/// The paper's Table 2 encoding for followers/likes/retweets:
/// `< 100 → 0`, `∈ [100, 1000] → 1`, `> 1000 → 2`.
pub fn bucket_count(n: u64) -> u8 {
    if n < 100 {
        0
    } else if n <= 1000 {
        1
    } else {
        2
    }
}

/// Weekly engagement profile, Monday..Sunday, in `[-1, 1]`.
/// Weekends see more social-media consumption.
const DOW_EFFECT: [f64; 7] = [-0.55, -0.35, -0.15, 0.0, 0.25, 0.85, 0.65];

/// Engagement model parameters.
#[derive(Debug, Clone)]
pub struct EngagementModel {
    /// Weight of the content (event virality) signal.
    pub w_content: f64,
    /// Weight of the author's follower bucket.
    pub w_followers: f64,
    /// Weight of the day-of-week profile.
    pub w_day: f64,
    /// Weight of the Gaussian noise term.
    pub w_noise: f64,
    /// Lower class threshold on the latent score.
    pub t_low: f64,
    /// Upper class threshold on the latent score.
    pub t_high: f64,
}

impl Default for EngagementModel {
    fn default() -> Self {
        EngagementModel {
            w_content: 1.2,
            w_followers: 0.85,
            w_day: 0.45,
            w_noise: 0.47,
            t_low: -0.55,
            t_high: 0.65,
        }
    }
}

/// A sampled engagement outcome.
#[derive(Debug, Clone, Copy)]
pub struct Engagement {
    /// Number of likes (favorites).
    pub likes: u64,
    /// Number of retweets.
    pub retweets: u64,
}

impl EngagementModel {
    /// Latent score before noise.
    fn signal(&self, virality: f64, follower_bucket: u8, ts: u64) -> f64 {
        let content = 2.0 * virality - 1.0; // [0,1] -> [-1,1]
        let followers = follower_bucket as f64 - 1.0; // {0,1,2} -> {-1,0,1}
        let day = DOW_EFFECT[day_of_week(ts) as usize];
        self.w_content * content + self.w_followers * followers + self.w_day * day
    }

    fn class_of(&self, z: f64) -> u8 {
        if z < self.t_low {
            0
        } else if z < self.t_high {
            1
        } else {
            2
        }
    }

    /// Samples likes and retweets for one tweet.
    ///
    /// * `virality` — content virality in `[0, 1]` (topic virality ×
    ///   burst envelope normalization).
    /// * `follower_bucket` — the author's Table 2 bucket.
    /// * `ts` — tweet timestamp (for the day-of-week effect).
    pub fn sample(
        &self,
        virality: f64,
        follower_bucket: u8,
        ts: u64,
        rng: &mut SplitMix64,
    ) -> Engagement {
        let base = self.signal(virality, follower_bucket, ts);
        let z_likes = base + self.w_noise * rng.next_gaussian();
        // Retweets share the signal but have independent noise and are
        // systematically rarer (shift down half a noise unit).
        let z_rts = base - 0.25 + self.w_noise * rng.next_gaussian();

        Engagement {
            likes: sample_count_in_class(self.class_of(z_likes), rng),
            retweets: sample_count_in_class(self.class_of(z_rts), rng),
        }
    }

    /// The Bayes-optimal class given full information (no noise) —
    /// used by tests to measure how much headroom the noise leaves.
    pub fn noiseless_class(&self, virality: f64, follower_bucket: u8, ts: u64) -> u8 {
        self.class_of(self.signal(virality, follower_bucket, ts))
    }
}

/// Samples a concrete count inside a Table 2 class range, skewed
/// toward the low end of the range as real engagement is.
fn sample_count_in_class(class: u8, rng: &mut SplitMix64) -> u64 {
    let u = rng.next_f64();
    let skew = u * u; // quadratic skew toward 0
    match class {
        0 => (skew * 99.0) as u64,
        1 => 100 + (skew * 900.0) as u64,
        _ => 1001 + (skew * 49_000.0) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{DAY, MAY_2019};

    #[test]
    fn bucket_boundaries_match_table2() {
        assert_eq!(bucket_count(0), 0);
        assert_eq!(bucket_count(99), 0);
        assert_eq!(bucket_count(100), 1);
        assert_eq!(bucket_count(1000), 1);
        assert_eq!(bucket_count(1001), 2);
        assert_eq!(bucket_count(u64::MAX), 2);
    }

    #[test]
    fn counts_fall_inside_their_class() {
        let mut rng = SplitMix64::new(1);
        for class in 0..3u8 {
            for _ in 0..500 {
                let c = sample_count_in_class(class, &mut rng);
                assert_eq!(bucket_count(c), class, "class {class} produced {c}");
            }
        }
    }

    fn mean_likes_class(model: &EngagementModel, virality: f64, fb: u8, ts: u64) -> f64 {
        let mut rng = SplitMix64::new(7);
        let n = 3000;
        (0..n)
            .map(|_| bucket_count(model.sample(virality, fb, ts, &mut rng).likes) as f64)
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn higher_virality_more_engagement() {
        let m = EngagementModel::default();
        let ts = MAY_2019 + 5 * DAY;
        let low = mean_likes_class(&m, 0.1, 1, ts);
        let high = mean_likes_class(&m, 0.9, 1, ts);
        assert!(high > low + 0.3, "virality effect: {low} -> {high}");
    }

    #[test]
    fn influencers_get_more_engagement() {
        let m = EngagementModel::default();
        let ts = MAY_2019 + 5 * DAY;
        let nobody = mean_likes_class(&m, 0.5, 0, ts);
        let influencer = mean_likes_class(&m, 0.5, 2, ts);
        assert!(influencer > nobody + 0.3, "follower effect: {nobody} -> {influencer}");
    }

    #[test]
    fn weekend_boost_exists() {
        let m = EngagementModel::default();
        // 2019-05-01 is Wednesday; +3 days = Saturday.
        let weekday = mean_likes_class(&m, 0.5, 1, MAY_2019); // Wednesday
        let weekend = mean_likes_class(&m, 0.5, 1, MAY_2019 + 3 * DAY); // Saturday
        assert!(weekend > weekday + 0.1, "dow effect: {weekday} -> {weekend}");
    }

    #[test]
    fn metadata_explains_variance_beyond_content() {
        // For a fixed virality, the noiseless class still varies with
        // followers and day — this is exactly the headroom the
        // metadata vector exploits in Tables 8–9.
        let m = EngagementModel::default();
        let mut classes = std::collections::HashSet::new();
        for fb in 0..3u8 {
            for d in 0..7u64 {
                classes.insert(m.noiseless_class(0.5, fb, MAY_2019 + d * DAY));
            }
        }
        assert!(classes.len() >= 2, "metadata must move the class at fixed content");
    }

    #[test]
    fn retweets_rarer_than_likes() {
        let m = EngagementModel::default();
        let mut rng = SplitMix64::new(5);
        let ts = MAY_2019 + 2 * DAY;
        let n = 5000;
        let mut like_sum = 0f64;
        let mut rt_sum = 0f64;
        for _ in 0..n {
            let e = m.sample(0.5, 1, ts, &mut rng);
            like_sum += bucket_count(e.likes) as f64;
            rt_sum += bucket_count(e.retweets) as f64;
        }
        assert!(like_sum > rt_sum, "likes {like_sum} vs retweets {rt_sum}");
    }

    #[test]
    fn deterministic_given_rng() {
        let m = EngagementModel::default();
        let mut a = SplitMix64::new(3);
        let mut b = SplitMix64::new(3);
        for _ in 0..100 {
            let ea = m.sample(0.7, 2, MAY_2019, &mut a);
            let eb = m.sample(0.7, 2, MAY_2019, &mut b);
            assert_eq!(ea.likes, eb.likes);
            assert_eq!(ea.retweets, eb.retweets);
        }
    }
}
