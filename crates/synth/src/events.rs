//! Planted ground-truth events.
//!
//! Each topic receives burst windows over the simulated five-month
//! collection period. During a burst, the topic's news and tweet rates
//! are multiplied by the burst intensity — exactly the mention-anomaly
//! signature MABED detects. Because the bursts are planted, the
//! integration tests can assert detection against ground truth, which
//! the paper's real-world data never allowed.

use crate::time::DAY;
use crate::topics::TopicKind;
use nd_linalg::rng::SplitMix64;

/// A planted burst for one topic.
#[derive(Debug, Clone)]
pub struct GroundTruthEvent {
    /// Index into the topic inventory.
    pub topic: usize,
    /// Burst start (unix seconds).
    pub start: u64,
    /// Burst end (unix seconds, exclusive).
    pub end: u64,
    /// Rate multiplier at the burst peak (≥ 1).
    pub intensity: f64,
    /// Lag between the news burst and its Twitter echo (seconds).
    /// Social media picks a story up *after* mass media publishes it —
    /// the asymmetry behind the paper's `S_TE ∈ [S_NE, S_NE + 5 days]`
    /// correlation constraint. Zero for Twitter-only topics.
    pub twitter_lag: u64,
}

impl GroundTruthEvent {
    /// Burst envelope at time `ts`: a triangular ramp peaking at the
    /// midpoint (0 outside the window, `intensity` at the peak).
    pub fn envelope(&self, ts: u64) -> f64 {
        if ts < self.start || ts >= self.end {
            return 0.0;
        }
        let len = (self.end - self.start) as f64;
        let pos = (ts - self.start) as f64 / len;
        let tri = 1.0 - (2.0 * pos - 1.0).abs();
        self.intensity * tri
    }

    /// `true` when `ts` falls inside the burst window.
    pub fn active(&self, ts: u64) -> bool {
        ts >= self.start && ts < self.end
    }

    /// Burst envelope as seen on Twitter: the news envelope delayed by
    /// [`Self::twitter_lag`].
    pub fn twitter_envelope(&self, ts: u64) -> f64 {
        self.envelope(ts.saturating_sub(self.twitter_lag))
    }
}

/// Plants bursts for every topic over `[start, start + days·DAY)`.
///
/// News-and-Twitter topics receive one to two bursts; Twitter-only
/// topics receive one long, flatter burst (matching Table 7's
/// long-lived chatter events). Bursts are deterministic from `seed`.
pub fn plant_events(
    topics: &[crate::topics::TopicSpec],
    start: u64,
    days: u64,
    seed: u64,
) -> Vec<GroundTruthEvent> {
    let mut rng = SplitMix64::new(seed ^ 0xEEE);
    let mut events = Vec::new();
    for (idx, spec) in topics.iter().enumerate() {
        match spec.kind {
            TopicKind::NewsAndTwitter => {
                let n_bursts = 1 + rng.next_usize(2); // 1..=2
                for _ in 0..n_bursts {
                    let duration = 3 + rng.next_usize(8) as u64; // 3..=10 days
                    let latest = days.saturating_sub(duration + 1).max(1);
                    let offset = rng.next_usize(latest as usize) as u64;
                    // Twitter echoes the story 1–2.5 days later —
                    // inside the paper's 5-day correlation window.
                    let twitter_lag = DAY + rng.next_usize((DAY + DAY / 2) as usize) as u64;
                    events.push(GroundTruthEvent {
                        topic: idx,
                        start: start + offset * DAY,
                        end: start + (offset + duration) * DAY,
                        intensity: 4.0 + 6.0 * rng.next_f64(), // 4x..10x
                        twitter_lag,
                    });
                }
            }
            TopicKind::TwitterOnly => {
                let duration = 20 + rng.next_usize(40) as u64; // 20..=59 days
                let latest = days.saturating_sub(duration + 1).max(1);
                let offset = rng.next_usize(latest as usize) as u64;
                events.push(GroundTruthEvent {
                    topic: idx,
                    start: start + offset * DAY,
                    end: start + (offset + duration).min(days) * DAY,
                    intensity: 2.0 + 2.0 * rng.next_f64(), // gentler
                    twitter_lag: 0,
                });
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MAY_2019;
    use crate::topics::topic_inventory;

    fn events() -> Vec<GroundTruthEvent> {
        plant_events(&topic_inventory(), MAY_2019, 150, 42)
    }

    #[test]
    fn every_topic_gets_at_least_one_event() {
        let evs = events();
        let topics = topic_inventory();
        for (idx, topic) in topics.iter().enumerate() {
            assert!(
                evs.iter().any(|e| e.topic == idx),
                "topic {} has no event",
                topic.name
            );
        }
    }

    #[test]
    fn events_within_window() {
        for e in events() {
            assert!(e.start >= MAY_2019);
            assert!(e.end <= MAY_2019 + 150 * DAY);
            assert!(e.end > e.start);
            assert!(e.intensity >= 1.0);
        }
    }

    #[test]
    fn news_events_have_twitter_lag_within_window() {
        let evs = events();
        let topics = topic_inventory();
        for e in &evs {
            if topics[e.topic].kind == TopicKind::NewsAndTwitter {
                assert!(e.twitter_lag >= DAY && e.twitter_lag < 3 * DAY, "{}", e.twitter_lag);
            } else {
                assert_eq!(e.twitter_lag, 0);
            }
        }
    }

    #[test]
    fn twitter_envelope_is_delayed() {
        let e = GroundTruthEvent {
            topic: 0,
            start: 1_000,
            end: 2_000,
            intensity: 5.0,
            twitter_lag: 500,
        };
        assert_eq!(e.twitter_envelope(1_000), 0.0, "echo not started yet");
        assert!(e.twitter_envelope(2_000) > 0.0, "echo still running after news ends");
        assert!((e.twitter_envelope(2_000) - e.envelope(1_500)).abs() < 1e-12);
    }

    #[test]
    fn envelope_shape() {
        let e = GroundTruthEvent { topic: 0, start: 0, end: 100, intensity: 6.0, twitter_lag: 0 };
        assert_eq!(e.envelope(200), 0.0);
        let mid = e.envelope(50);
        assert!((mid - 6.0).abs() < 0.2, "peak near intensity, got {mid}");
        assert!(e.envelope(10) < mid);
        assert!(e.envelope(90) < mid);
        assert!(e.envelope(0) < 0.2);
    }

    #[test]
    fn deterministic() {
        let a = events();
        let b = events();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.start, y.start);
            assert_eq!(x.intensity, y.intensity);
        }
    }

    #[test]
    fn twitter_only_bursts_are_longer() {
        let evs = events();
        let topics = topic_inventory();
        let news_max = evs
            .iter()
            .filter(|e| topics[e.topic].kind == TopicKind::NewsAndTwitter)
            .map(|e| e.end - e.start)
            .max()
            .unwrap();
        let twitter_min = evs
            .iter()
            .filter(|e| topics[e.topic].kind == TopicKind::TwitterOnly)
            .map(|e| e.end - e.start)
            .min()
            .unwrap();
        assert!(twitter_min > news_max, "chatter events should be long-lived");
    }
}
