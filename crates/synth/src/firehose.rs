//! Deterministic firehose: the world as a sequence of time slices.
//!
//! `World::generate` materializes the whole collection window in one
//! pass from a single RNG stream, which makes any incremental
//! consumer replay history to reach hour *h*. The firehose instead
//! carves the window into fixed-width slices and gives **every slice
//! its own seeded RNG stream**, derived only from the master seed and
//! the slice index. Two consequences the incremental pipeline
//! (DESIGN.md §17) is built on:
//!
//! * **Draw-order independence.** `poll(k)` returns bit-identical
//!   content whether it is the first slice drawn or the last, polled
//!   once or a hundred times, from this process or another.
//! * **No history replay.** Producing slice *k* costs only slice *k*'s
//!   generation work; the planted events, topic inventory, and user
//!   population are fixed once at construction.
//!
//! Article and tweet ids are **slice-local** (dense, time-ordered
//! within the slice); the collect fold globalizes them by offsetting
//! with the cumulative counts of earlier slices.

use crate::events::{plant_events, GroundTruthEvent};
use crate::news_gen;
use crate::time::HOUR;
use crate::topics::{topic_inventory, TopicKind, TopicSpec};
use crate::tweet_gen;
use crate::users::{generate_users, User};
use crate::world::{NewsArticle, Tweet, WorldConfig};
use nd_linalg::rng::SplitMix64;

/// Firehose parameters: a world configuration plus the slice width.
#[derive(Debug, Clone)]
pub struct FirehoseConfig {
    /// The underlying world (horizon, rates, population, seed).
    pub world: WorldConfig,
    /// Slice width in hours. The horizon `world.days * 24` is carved
    /// into `ceil(hours / slice_hours)` slices; the last slice may be
    /// short.
    pub slice_hours: u64,
}

impl FirehoseConfig {
    /// A scaled-down stream for unit/integration tests: a two-week
    /// horizon in 48-hour slices (7 slices).
    pub fn small() -> Self {
        FirehoseConfig { world: WorldConfig::small(), slice_hours: 48 }
    }

    /// Number of slices covering the horizon.
    pub fn n_slices(&self) -> usize {
        let hours = self.world.days * 24;
        (hours.div_ceil(self.slice_hours.max(1))) as usize
    }

    /// FNV-compatible fingerprint of everything that determines slice
    /// content. Two configs with equal fingerprints produce bit-equal
    /// slices.
    pub fn fingerprint(&self) -> u64 {
        let c = &self.world;
        let mut out = Vec::new();
        for v in [
            c.start,
            c.days,
            c.n_users as u64,
            c.min_influencers as u64,
            c.news_base_rate.to_bits(),
            c.tweet_base_rate.to_bits(),
            c.engagement.w_content.to_bits(),
            c.engagement.w_followers.to_bits(),
            c.engagement.w_day.to_bits(),
            c.engagement.w_noise.to_bits(),
            c.engagement.t_low.to_bits(),
            c.engagement.t_high.to_bits(),
            c.seed,
            self.slice_hours,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        nd_store::fnv1a64(&out)
    }
}

/// One poll result: everything published inside `[start, end)`.
///
/// Articles and tweets are sorted by timestamp with dense slice-local
/// ids starting at 0.
#[derive(Debug, Clone)]
pub struct TimeSlice {
    /// Slice index within the horizon.
    pub index: usize,
    /// Slice start (unix seconds, inclusive).
    pub start: u64,
    /// Slice end (unix seconds, exclusive).
    pub end: u64,
    /// Articles published in the slice.
    pub articles: Vec<NewsArticle>,
    /// Tweets posted in the slice.
    pub tweets: Vec<Tweet>,
}

/// The firehose itself. Construction fixes the ground truth (topics,
/// planted events, users); [`Firehose::poll`] generates slices on
/// demand from per-slice RNG streams.
#[derive(Debug, Clone)]
pub struct Firehose {
    config: FirehoseConfig,
    topics: Vec<TopicSpec>,
    events: Vec<GroundTruthEvent>,
    users: Vec<User>,
    author_weights: Vec<f64>,
}

impl Firehose {
    /// Builds the firehose: plants events and generates the user
    /// population over the full horizon, exactly as `World::generate`
    /// does.
    pub fn new(config: FirehoseConfig) -> Firehose {
        let topics = topic_inventory();
        let events =
            plant_events(&topics, config.world.start, config.world.days, config.world.seed);
        let users =
            generate_users(config.world.n_users, config.world.min_influencers, config.world.seed);
        let author_weights: Vec<f64> =
            users.iter().map(|u| 1.0 + (u.followers as f64).sqrt() / 40.0).collect();
        Firehose { config, topics, events, users, author_weights }
    }

    /// The configuration the firehose was built from.
    pub fn config(&self) -> &FirehoseConfig {
        &self.config
    }

    /// Number of slices in the horizon.
    pub fn n_slices(&self) -> usize {
        self.config.n_slices()
    }

    /// Topic inventory (index space for `gt_topic`).
    pub fn topics(&self) -> &[TopicSpec] {
        &self.topics
    }

    /// Planted ground-truth events.
    pub fn events(&self) -> &[GroundTruthEvent] {
        &self.events
    }

    /// User population.
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// `[start, end)` bounds of slice `k` in unix seconds.
    ///
    /// # Panics
    /// When `k` is outside the horizon.
    pub fn slice_bounds(&self, k: usize) -> (u64, u64) {
        assert!(k < self.n_slices(), "slice {k} outside horizon of {}", self.n_slices());
        let horizon_end = self.config.world.start + self.config.world.days * 24 * HOUR;
        let start = self.config.world.start + k as u64 * self.config.slice_hours * HOUR;
        let end = (start + self.config.slice_hours * HOUR).min(horizon_end);
        (start, end)
    }

    /// RNG stream for slice `k`: a function of the master seed and the
    /// slice index only.
    fn slice_rng(&self, k: usize) -> SplitMix64 {
        let mixed = (k as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.config.world.seed ^ 0x0F1E_405E);
        SplitMix64::new(mixed)
    }

    /// Generates slice `k`. Bit-identical for the same `(config, k)`
    /// regardless of when — or how often — it is drawn.
    ///
    /// The per-hour emission logic mirrors `World::generate` exactly
    /// (burst envelopes, virality, engagement sampling); only the RNG
    /// stream is slice-scoped.
    ///
    /// # Panics
    /// When `k` is outside the horizon.
    pub fn poll(&self, k: usize) -> TimeSlice {
        let (start, end) = self.slice_bounds(k);
        let config = &self.config.world;
        let mut rng = self.slice_rng(k);
        let mut articles = Vec::new();
        let mut tweets = Vec::new();

        let mut ts_hour = start;
        while ts_hour < end {
            for (topic_idx, spec) in self.topics.iter().enumerate() {
                let news_burst: f64 = self
                    .events
                    .iter()
                    .filter(|e| e.topic == topic_idx)
                    .map(|e| e.envelope(ts_hour))
                    .fold(0.0, f64::max);
                let burst: f64 = self
                    .events
                    .iter()
                    .filter(|e| e.topic == topic_idx)
                    .map(|e| e.twitter_envelope(ts_hour))
                    .fold(0.0, f64::max);

                // --- News ---
                if spec.kind == TopicKind::NewsAndTwitter {
                    let rate = config.news_base_rate * (1.0 + news_burst);
                    for _ in 0..news_gen::sample_poisson(rate, &mut rng) {
                        let ts = ts_hour + rng.next_usize(HOUR as usize) as u64;
                        let content = news_gen::article_body(spec.keywords, &mut rng);
                        articles.push(NewsArticle {
                            id: articles.len() as u64,
                            timestamp: ts,
                            source: news_gen::pick_source(&mut rng).to_string(),
                            title: news_gen::headline(spec.keywords, &mut rng),
                            snippet: news_gen::snippet_of(&content),
                            content,
                            gt_topic: topic_idx,
                        });
                    }
                }

                // --- Tweets ---
                let tweet_burst_gain =
                    if spec.kind == TopicKind::NewsAndTwitter { 1.3 } else { 1.0 };
                let rate = config.tweet_base_rate * (1.0 + tweet_burst_gain * burst);
                let peak: f64 = self
                    .events
                    .iter()
                    .filter(|e| e.topic == topic_idx)
                    .filter(|e| e.twitter_envelope(ts_hour) > 0.0)
                    .map(|e| e.intensity)
                    .fold(0.0, f64::max);
                let virality = if peak > 0.0 {
                    spec.virality * (0.45 + 0.55 * (peak / 10.0).min(1.0))
                } else {
                    spec.virality * 0.35
                };
                for _ in 0..news_gen::sample_poisson(rate, &mut rng) {
                    let ts = ts_hour + rng.next_usize(HOUR as usize) as u64;
                    let author = &self.users[rng.sample_weighted(&self.author_weights)];
                    let engagement = config.engagement.sample(
                        virality,
                        author.follower_bucket(),
                        ts,
                        &mut rng,
                    );
                    tweets.push(Tweet {
                        id: tweets.len() as u64,
                        timestamp: ts,
                        author_id: author.id,
                        author_handle: author.handle.clone(),
                        author_followers: author.followers,
                        text: tweet_gen::tweet_text(spec.keywords, &mut rng),
                        likes: engagement.likes,
                        retweets: engagement.retweets,
                        gt_topic: topic_idx,
                        gt_virality: virality,
                    });
                }
            }
            ts_hour += HOUR;
        }

        articles.sort_by_key(|a| a.timestamp);
        tweets.sort_by_key(|t| t.timestamp);
        for (i, a) in articles.iter_mut().enumerate() {
            a.id = i as u64;
        }
        for (i, t) in tweets.iter_mut().enumerate() {
            t.id = i as u64;
        }

        TimeSlice { index: k, start, end, articles, tweets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_hose() -> Firehose {
        let mut cfg = FirehoseConfig::small();
        cfg.world.days = 8;
        cfg.slice_hours = 24;
        Firehose::new(cfg)
    }

    fn slice_digest(s: &TimeSlice) -> u64 {
        let mut w = nd_store::ByteWriter::new();
        crate::serial::encode_articles(&s.articles, &mut w);
        crate::serial::encode_tweets(&s.tweets, &mut w);
        nd_store::fnv1a64(&w.into_bytes())
    }

    #[test]
    fn slices_tile_the_horizon() {
        let fh = small_hose();
        assert_eq!(fh.n_slices(), 8);
        let mut expected = fh.config().world.start;
        for k in 0..fh.n_slices() {
            let (s, e) = fh.slice_bounds(k);
            assert_eq!(s, expected);
            assert!(e > s);
            expected = e;
        }
        assert_eq!(expected, fh.config().world.start + 8 * 24 * HOUR);
    }

    #[test]
    fn poll_is_independent_of_draw_order() {
        let fh = small_hose();
        // Draw 3 after 0..8 forward, then again after a reverse sweep,
        // then from a fresh firehose: all bit-identical.
        let forward: Vec<u64> = (0..fh.n_slices()).map(|k| slice_digest(&fh.poll(k))).collect();
        let reverse: Vec<u64> =
            (0..fh.n_slices()).rev().map(|k| slice_digest(&fh.poll(k))).collect();
        for (k, d) in forward.iter().enumerate() {
            assert_eq!(*d, reverse[fh.n_slices() - 1 - k], "slice {k} depends on draw order");
        }
        let fresh = Firehose::new(fh.config().clone());
        assert_eq!(slice_digest(&fresh.poll(3)), forward[3]);
    }

    #[test]
    fn slice_content_stays_inside_bounds_with_dense_local_ids() {
        let fh = small_hose();
        for k in 0..fh.n_slices() {
            let s = fh.poll(k);
            for (i, a) in s.articles.iter().enumerate() {
                assert_eq!(a.id, i as u64);
                assert!(a.timestamp >= s.start && a.timestamp < s.end);
            }
            for (i, t) in s.tweets.iter().enumerate() {
                assert_eq!(t.id, i as u64);
                assert!(t.timestamp >= s.start && t.timestamp < s.end);
            }
        }
    }

    #[test]
    fn distinct_slices_have_distinct_content() {
        let fh = small_hose();
        let a = fh.poll(0);
        let b = fh.poll(1);
        assert!(!a.articles.is_empty() && !b.articles.is_empty());
        assert_ne!(slice_digest(&a), slice_digest(&b));
    }

    #[test]
    fn union_covers_every_topic_kind() {
        let fh = small_hose();
        let mut news_topics = std::collections::BTreeSet::new();
        let mut tweet_topics = std::collections::BTreeSet::new();
        for k in 0..fh.n_slices() {
            let s = fh.poll(k);
            news_topics.extend(s.articles.iter().map(|a| a.gt_topic));
            tweet_topics.extend(s.tweets.iter().map(|t| t.gt_topic));
        }
        // News only from NewsAndTwitter topics; Twitter-only topics
        // appear among tweets.
        assert!(news_topics
            .iter()
            .all(|&t| fh.topics()[t].kind == TopicKind::NewsAndTwitter));
        assert!(tweet_topics
            .iter()
            .any(|&t| fh.topics()[t].kind == TopicKind::TwitterOnly));
    }
}
