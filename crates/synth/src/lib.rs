//! # nd-synth
//!
//! The synthetic world model — the data substitute of DESIGN.md §1.
//!
//! The paper evaluates on 261k news articles and 80k tweets collected
//! over five months in 2019. Those datasets are not available, so this
//! crate generates a world with *known ground truth* that exercises
//! every code path of the pipeline:
//!
//! * [`topics`] — the latent topic inventory: the ten news topics of
//!   the paper's Table 3 (Brexit, tariffs, Huawei, Iran, Gaza,
//!   impeachment, Kentucky derby, …), the Twitter-only chatter topics
//!   of Table 7 (cartoons, Game of Thrones, food, …), and background
//!   vocabulary.
//! * [`events`] — planted bursts: each news topic gets burst windows
//!   during which both news and tweet volume spike; Twitter-only
//!   topics burst only on Twitter.
//! * [`users`] — a power-law follower distribution with a small
//!   influencer set.
//! * [`engagement`] — the likes/retweets ground truth: engagement
//!   depends on content virality, the author's follower bucket, and
//!   the day of the week, plus noise. The *calibrated strengths* make
//!   "metadata improves prediction accuracy by ≈ +0.05" a falsifiable
//!   property (paper §5.6) rather than an artifact.
//! * [`news_gen`] / [`tweet_gen`] — article and tweet text generators
//!   (sentences with capitalization, punctuation, hashtags, mentions,
//!   URLs) so the preprocessing pipelines have real work to do.
//! * [`api`] — simulated NewsRiver / NewsAPI / Twitter REST endpoints
//!   with pagination and truncation quirks, plus the scraper that
//!   restores full article bodies (paper §4.1).
//!
//! Everything is deterministic from [`WorldConfig::seed`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod engagement;
pub mod events;
pub mod firehose;
pub mod news_gen;
pub mod serial;
pub mod time;
pub mod topics;
pub mod trajectories;
pub mod tweet_gen;
pub mod users;
pub mod world;

pub use engagement::{bucket_count, EngagementModel};
pub use events::GroundTruthEvent;
pub use firehose::{Firehose, FirehoseConfig, TimeSlice};
pub use serial::{
    decode_articles, decode_tweets, decode_world, encode_articles, encode_tweets, encode_world,
};
pub use time::day_of_week;
pub use topics::{topic_inventory, TopicKind, TopicSpec};
pub use trajectories::{
    generate_trajectories, PlantedSignature, TrajectoryConfig, TrajectorySet,
};
pub use users::User;
pub use world::{NewsArticle, Tweet, World, WorldConfig};
