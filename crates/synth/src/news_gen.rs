//! News-article text generation.

use crate::topics::{FILLER, OUTLETS};
use nd_linalg::rng::SplitMix64;

/// Samples a Poisson-distributed count (Knuth's method; fine for the
/// small per-hour rates used here).
pub fn sample_poisson(lambda: f64, rng: &mut SplitMix64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.next_f64();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // guard against pathological lambda
        }
    }
}

/// Picks a word: topical with probability `topical_p`, filler
/// otherwise.
fn pick_word<'a>(
    keywords: &[&'a str],
    topical_p: f64,
    rng: &mut SplitMix64,
) -> (&'a str, bool) {
    if rng.next_bool(topical_p) {
        (keywords[rng.next_usize(keywords.len())], true)
    } else {
        (FILLER[rng.next_usize(FILLER.len())], false)
    }
}

/// Capitalizes the first letter.
fn capitalize(w: &str) -> String {
    let mut cs = w.chars();
    match cs.next() {
        Some(f) => f.to_uppercase().collect::<String>() + cs.as_str(),
        None => String::new(),
    }
}

/// Generates one sentence of `len` words; roughly `topical_p` of them
/// topical. Topical words are sometimes capitalized mid-sentence
/// (proper-noun style) so the NER heuristic has real work.
fn sentence(keywords: &[&str], len: usize, topical_p: f64, rng: &mut SplitMix64) -> String {
    let mut words = Vec::with_capacity(len);
    for i in 0..len {
        let (w, topical) = pick_word(keywords, topical_p, rng);
        let w = if i == 0 {
            capitalize(w)
        } else {
            // Mid-sentence topical words are sometimes rendered
            // proper-noun style (the draw is skipped sentence-initially
            // to keep the RNG stream position-independent of styling).
            let proper_noun_style = topical && rng.next_bool(0.25);
            if proper_noun_style {
                capitalize(w)
            } else {
                w.to_string()
            }
        };
        words.push(w);
    }
    let terminal = match rng.next_usize(10) {
        0 => "!",
        1 => "?",
        _ => ".",
    };
    format!("{}{}", words.join(" "), terminal)
}

/// Generates an article headline (topic-dense, title-case-ish).
pub fn headline(keywords: &[&str], rng: &mut SplitMix64) -> String {
    let len = 4 + rng.next_usize(5);
    let mut words = Vec::with_capacity(len);
    for _ in 0..len {
        let (w, topical) = pick_word(keywords, 0.75, rng);
        words.push(if topical || rng.next_bool(0.5) { capitalize(w) } else { w.to_string() });
    }
    words.join(" ")
}

/// Generates a full article body: 3–6 sentences, ≈55% topical words.
pub fn article_body(keywords: &[&str], rng: &mut SplitMix64) -> String {
    let n_sent = 3 + rng.next_usize(4);
    let sents: Vec<String> = (0..n_sent)
        .map(|_| sentence(keywords, 9 + rng.next_usize(8), 0.55, rng))
        .collect();
    sents.join(" ")
}

/// Picks a news source handle.
pub fn pick_source(rng: &mut SplitMix64) -> &'static str {
    OUTLETS[rng.next_usize(OUTLETS.len())]
}

/// First sentence only — the truncated "content" NewsAPI returns
/// before the scraper fetches the full article (paper §4.1).
pub fn snippet_of(body: &str) -> String {
    match body.find(['.', '!', '?']) {
        Some(idx) => body[..=idx].to_string(),
        None => body.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topics::topic_inventory;

    #[test]
    fn poisson_mean_close_to_lambda() {
        let mut rng = SplitMix64::new(1);
        let n = 20_000;
        let total: usize = (0..n).map(|_| sample_poisson(3.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
        assert_eq!(sample_poisson(-1.0, &mut rng), 0);
    }

    #[test]
    fn body_contains_topic_keywords() {
        let topics = topic_inventory();
        let mut rng = SplitMix64::new(5);
        let body = article_body(topics[0].keywords, &mut rng).to_lowercase();
        let hits = topics[0].keywords.iter().filter(|k| body.contains(*k)).count();
        assert!(hits >= 3, "only {hits} topical keywords in: {body}");
    }

    #[test]
    fn sentences_capitalized_and_terminated() {
        let topics = topic_inventory();
        let mut rng = SplitMix64::new(6);
        let body = article_body(topics[1].keywords, &mut rng);
        assert!(body.chars().next().unwrap().is_uppercase());
        assert!(body.ends_with(['.', '!', '?']));
    }

    #[test]
    fn headline_nonempty() {
        let topics = topic_inventory();
        let mut rng = SplitMix64::new(7);
        let h = headline(topics[2].keywords, &mut rng);
        assert!(h.split_whitespace().count() >= 4);
    }

    #[test]
    fn snippet_is_first_sentence() {
        assert_eq!(snippet_of("First one. Second one."), "First one.");
        assert_eq!(snippet_of("No terminal"), "No terminal");
    }

    #[test]
    fn deterministic() {
        let topics = topic_inventory();
        let a = article_body(topics[0].keywords, &mut SplitMix64::new(9));
        let b = article_body(topics[0].keywords, &mut SplitMix64::new(9));
        assert_eq!(a, b);
    }
}
