//! Binary serialization of a [`World`] — the pipeline's stage-1
//! (collection) artifact.
//!
//! The encoding is hand-rolled over `nd-store`'s [`ByteWriter`] /
//! [`ByteReader`] instead of serde so the roundtrip is *bit-exact*:
//! floats travel as raw `f64::to_bits`, so a decoded world compares
//! equal to the generated one down to the last engagement weight.
//! That exactness is what lets a warm pipeline run reproduce a cold
//! run byte for byte.
//!
//! `World::topics` holds `&'static` keyword tables and is therefore
//! not serialized: the inventory is a compile-time constant with a
//! stable order, so decode reattaches [`topic_inventory`] and only
//! verifies the stored count still matches. If the inventory ever
//! changes shape, old artifacts fail that check and read as cache
//! misses — exactly the recompute-on-drift behaviour the cache wants
//! (bumping the collect stage's code version handles content-only
//! edits).

use crate::engagement::EngagementModel;
use crate::events::GroundTruthEvent;
use crate::topics::topic_inventory;
use crate::users::User;
use crate::world::{NewsArticle, Tweet, World, WorldConfig};
use nd_store::{ArtifactError, ByteReader, ByteWriter};

/// Encodes a world into `out`.
pub fn encode_world(world: &World, out: &mut ByteWriter) {
    encode_config(&world.config, out);
    out.put_usize(world.topics.len());
    out.put_usize(world.events.len());
    for e in &world.events {
        out.put_usize(e.topic);
        out.put_u64(e.start);
        out.put_u64(e.end);
        out.put_f64(e.intensity);
        out.put_u64(e.twitter_lag);
    }
    out.put_usize(world.users.len());
    for u in &world.users {
        out.put_u32(u.id);
        out.put_str(&u.handle);
        out.put_u64(u.followers);
        out.put_u64(u.friends);
        out.put_u64(u.retweets_total);
    }
    encode_articles(&world.articles, out);
    encode_tweets(&world.tweets, out);
}

/// Encodes a length-prefixed article list (shared between the batch
/// world artifact and the streaming slice artifacts).
pub fn encode_articles(articles: &[NewsArticle], out: &mut ByteWriter) {
    out.put_usize(articles.len());
    for a in articles {
        out.put_u64(a.id);
        out.put_u64(a.timestamp);
        out.put_str(&a.source);
        out.put_str(&a.title);
        out.put_str(&a.content);
        out.put_str(&a.snippet);
        out.put_usize(a.gt_topic);
    }
}

/// Decodes a list encoded by [`encode_articles`].
///
/// # Errors
/// Truncation or structural mismatch yields an [`ArtifactError`].
pub fn decode_articles(r: &mut ByteReader<'_>) -> Result<Vec<NewsArticle>, ArtifactError> {
    let n = r.len_prefix()?;
    let mut articles = Vec::with_capacity(n);
    for _ in 0..n {
        articles.push(NewsArticle {
            id: r.u64()?,
            timestamp: r.u64()?,
            source: r.str()?,
            title: r.str()?,
            content: r.str()?,
            snippet: r.str()?,
            gt_topic: r.usize()?,
        });
    }
    Ok(articles)
}

/// Encodes a length-prefixed tweet list (shared between the batch
/// world artifact and the streaming slice artifacts).
pub fn encode_tweets(tweets: &[Tweet], out: &mut ByteWriter) {
    out.put_usize(tweets.len());
    for t in tweets {
        out.put_u64(t.id);
        out.put_u64(t.timestamp);
        out.put_u32(t.author_id);
        out.put_str(&t.author_handle);
        out.put_u64(t.author_followers);
        out.put_str(&t.text);
        out.put_u64(t.likes);
        out.put_u64(t.retweets);
        out.put_usize(t.gt_topic);
        out.put_f64(t.gt_virality);
    }
}

/// Decodes a list encoded by [`encode_tweets`].
///
/// # Errors
/// Truncation or structural mismatch yields an [`ArtifactError`].
pub fn decode_tweets(r: &mut ByteReader<'_>) -> Result<Vec<Tweet>, ArtifactError> {
    let n = r.len_prefix()?;
    let mut tweets = Vec::with_capacity(n);
    for _ in 0..n {
        tweets.push(Tweet {
            id: r.u64()?,
            timestamp: r.u64()?,
            author_id: r.u32()?,
            author_handle: r.str()?,
            author_followers: r.u64()?,
            text: r.str()?,
            likes: r.u64()?,
            retweets: r.u64()?,
            gt_topic: r.usize()?,
            gt_virality: r.f64()?,
        });
    }
    Ok(tweets)
}

/// Decodes a world encoded by [`encode_world`].
///
/// # Errors
/// Any truncation or structural mismatch (including a topic-inventory
/// count drift) yields an [`ArtifactError`]; callers treat that as a
/// cache miss and regenerate.
pub fn decode_world(r: &mut ByteReader<'_>) -> Result<World, ArtifactError> {
    let config = decode_config(r)?;
    let n_topics = r.usize()?;
    let topics = topic_inventory();
    if n_topics != topics.len() {
        return Err(ArtifactError::Malformed("topic inventory size changed"));
    }
    let n_events = r.len_prefix()?;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        events.push(GroundTruthEvent {
            topic: r.usize()?,
            start: r.u64()?,
            end: r.u64()?,
            intensity: r.f64()?,
            twitter_lag: r.u64()?,
        });
    }
    let n_users = r.len_prefix()?;
    let mut users = Vec::with_capacity(n_users);
    for _ in 0..n_users {
        users.push(User {
            id: r.u32()?,
            handle: r.str()?,
            followers: r.u64()?,
            friends: r.u64()?,
            retweets_total: r.u64()?,
        });
    }
    let articles = decode_articles(r)?;
    let tweets = decode_tweets(r)?;
    Ok(World { config, topics, events, users, articles, tweets })
}

fn encode_config(c: &WorldConfig, out: &mut ByteWriter) {
    out.put_u64(c.start);
    out.put_u64(c.days);
    out.put_usize(c.n_users);
    out.put_usize(c.min_influencers);
    out.put_f64(c.news_base_rate);
    out.put_f64(c.tweet_base_rate);
    out.put_f64(c.engagement.w_content);
    out.put_f64(c.engagement.w_followers);
    out.put_f64(c.engagement.w_day);
    out.put_f64(c.engagement.w_noise);
    out.put_f64(c.engagement.t_low);
    out.put_f64(c.engagement.t_high);
    out.put_u64(c.seed);
}

fn decode_config(r: &mut ByteReader<'_>) -> Result<WorldConfig, ArtifactError> {
    Ok(WorldConfig {
        start: r.u64()?,
        days: r.u64()?,
        n_users: r.usize()?,
        min_influencers: r.usize()?,
        news_base_rate: r.f64()?,
        tweet_base_rate: r.f64()?,
        engagement: EngagementModel {
            w_content: r.f64()?,
            w_followers: r.f64()?,
            w_day: r.f64()?,
            w_noise: r.f64()?,
            t_low: r.f64()?,
            t_high: r.f64()?,
        },
        seed: r.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        let mut config = WorldConfig::small();
        config.days = 4;
        config.n_users = 40;
        World::generate(config)
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let world = small_world();
        let mut w = ByteWriter::new();
        encode_world(&world, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_world(&mut r).unwrap();
        assert!(r.is_empty(), "decode must consume the whole payload");
        // Bit-exactness: re-encoding the decoded world reproduces the
        // exact byte stream (covers every f64 via to_bits).
        let mut w2 = ByteWriter::new();
        encode_world(&back, &mut w2);
        assert_eq!(bytes, w2.into_bytes());
        // Spot checks on reconstructed statics and floats.
        assert_eq!(back.topics.len(), world.topics.len());
        assert_eq!(back.topics[0].name, world.topics[0].name);
        assert_eq!(back.tweets.len(), world.tweets.len());
        assert_eq!(
            back.tweets[0].gt_virality.to_bits(),
            world.tweets[0].gt_virality.to_bits()
        );
        assert_eq!(
            back.config.engagement.w_noise.to_bits(),
            world.config.engagement.w_noise.to_bits()
        );
    }

    #[test]
    fn truncated_payload_errors_cleanly() {
        let world = small_world();
        let mut w = ByteWriter::new();
        encode_world(&world, &mut w);
        let bytes = w.into_bytes();
        for cut in [0, 8, 40, bytes.len() / 2, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(decode_world(&mut r).is_err(), "cut at {cut} must error, not panic");
        }
    }
}
