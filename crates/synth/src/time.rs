//! Minimal civil-time helpers (no external date crate).

/// Seconds per day.
pub const DAY: u64 = 86_400;
/// Seconds per hour.
pub const HOUR: u64 = 3_600;

/// Unix timestamp of 2019-05-01 00:00:00 UTC — the start of the
/// paper's collection window.
pub const MAY_2019: u64 = 1_556_668_800;

/// Day of week for a unix timestamp: 0 = Monday … 6 = Sunday.
///
/// The unix epoch (1970-01-01) was a Thursday, i.e. weekday 3.
pub fn day_of_week(ts: u64) -> u8 {
    ((ts / DAY + 3) % 7) as u8
}

/// `true` for Saturday/Sunday.
pub fn is_weekend(ts: u64) -> bool {
    day_of_week(ts) >= 5
}

/// Hour of day (0–23).
pub fn hour_of_day(ts: u64) -> u8 {
    ((ts % DAY) / HOUR) as u8
}

/// Renders a timestamp as `YYYY-MM-DD HH:MM:SS` (UTC, proleptic
/// Gregorian) for report output.
pub fn format_ts(ts: u64) -> String {
    let days = ts / DAY;
    let secs = ts % DAY;
    let (y, m, d) = civil_from_days(days as i64);
    format!(
        "{y:04}-{m:02}-{d:02} {:02}:{:02}:{:02}",
        secs / 3600,
        (secs % 3600) / 60,
        secs % 60
    )
}

/// Howard Hinnant's `civil_from_days` algorithm.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_thursday() {
        assert_eq!(day_of_week(0), 3);
    }

    #[test]
    fn may_2019_starts_wednesday() {
        // 2019-05-01 was a Wednesday (weekday 2).
        assert_eq!(day_of_week(MAY_2019), 2);
    }

    #[test]
    fn weekend_detection() {
        // 2019-05-04 was a Saturday.
        assert!(is_weekend(MAY_2019 + 3 * DAY));
        assert!(is_weekend(MAY_2019 + 4 * DAY));
        assert!(!is_weekend(MAY_2019 + 5 * DAY));
    }

    #[test]
    fn hour_of_day_extraction() {
        assert_eq!(hour_of_day(MAY_2019), 0);
        assert_eq!(hour_of_day(MAY_2019 + 7 * HOUR + 30 * 60), 7);
    }

    #[test]
    fn format_known_dates() {
        assert_eq!(format_ts(0), "1970-01-01 00:00:00");
        assert_eq!(format_ts(MAY_2019), "2019-05-01 00:00:00");
        // 2019-05-11 03:05:40 (from the paper's Table 4).
        let ts = MAY_2019 + 10 * DAY + 3 * HOUR + 5 * 60 + 40;
        assert_eq!(format_ts(ts), "2019-05-11 03:05:40");
    }

    #[test]
    fn weekdays_cycle() {
        for d in 0..14 {
            let w1 = day_of_week(MAY_2019 + d * DAY);
            let w2 = day_of_week(MAY_2019 + (d + 7) * DAY);
            assert_eq!(w1, w2);
        }
    }
}
