//! The ground-truth topic inventory.
//!
//! Mirrors the paper's evaluation: the ten news topics of Table 3
//! (which must surface through NMF and correlate with Twitter events)
//! and the Twitter-only chatter topics of Table 7 (which must *not*
//! match any trending news topic).

/// Where a topic lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopicKind {
    /// Covered by news outlets and echoed on Twitter (Table 3 topics).
    NewsAndTwitter,
    /// Twitter chatter with no news coverage (Table 7 topics).
    TwitterOnly,
}

/// A latent topic with its keyword pool.
#[derive(Debug, Clone)]
pub struct TopicSpec {
    /// Short identifier (the expected event label family).
    pub name: &'static str,
    /// Keyword pool; generators draw topical words from here.
    pub keywords: &'static [&'static str],
    /// Where the topic appears.
    pub kind: TopicKind,
    /// Baseline virality of the topic's content in `[0, 1]` — feeds
    /// the engagement ground truth.
    pub virality: f64,
}

/// The full topic inventory (order is stable; indexes identify topics
/// throughout the crate).
pub fn topic_inventory() -> Vec<TopicSpec> {
    vec![
        // ---- Table 3 news topics ----
        TopicSpec {
            name: "brexit",
            keywords: &[
                "party", "election", "vote", "seat", "poll", "voter", "conservative", "win",
                "european", "brexit", "parliament", "leader", "minister", "campaign",
            ],
            kind: TopicKind::NewsAndTwitter,
            virality: 0.85,
        },
        TopicSpec {
            name: "tariffs",
            keywords: &[
                "tariff", "import", "billion", "chinese", "goods", "impose", "consumer",
                "product", "percent", "escalation", "stock", "threaten",
            ],
            kind: TopicKind::NewsAndTwitter,
            virality: 0.7,
        },
        TopicSpec {
            name: "business",
            keywords: &[
                "company", "business", "market", "industry", "customer", "service", "growth",
                "technology", "revenue", "retail", "online", "profit",
            ],
            kind: TopicKind::NewsAndTwitter,
            virality: 0.4,
        },
        TopicSpec {
            name: "trade_war",
            keywords: &[
                "trade", "deal", "war", "global", "economy", "talk", "agreement", "tension",
                "china", "negotiation", "markets", "tax",
            ],
            kind: TopicKind::NewsAndTwitter,
            virality: 0.75,
        },
        TopicSpec {
            name: "huawei",
            keywords: &[
                "huawei", "google", "ban", "smartphone", "android", "network", "security",
                "chip", "telecom", "blacklist", "emergency", "web",
            ],
            kind: TopicKind::NewsAndTwitter,
            virality: 0.8,
        },
        TopicSpec {
            name: "iran",
            keywords: &[
                "iran", "iranian", "tehran", "sanction", "nuclear", "drone", "tanker", "gulf",
                "missile", "warship", "waters", "foreign",
            ],
            kind: TopicKind::NewsAndTwitter,
            virality: 0.8,
        },
        TopicSpec {
            name: "gaza",
            keywords: &[
                "israel", "gaza", "israeli", "palestinian", "hamas", "rocket", "militant",
                "jerusalem", "netanyahu", "airstrike", "ceasefire", "military",
            ],
            kind: TopicKind::NewsAndTwitter,
            virality: 0.75,
        },
        TopicSpec {
            name: "japan",
            keywords: &[
                "japan", "abe", "japanese", "emperor", "tokyo", "naruhito", "shinzo", "visit",
                "imperial", "summit", "osaka", "ceremony",
            ],
            kind: TopicKind::NewsAndTwitter,
            virality: 0.5,
        },
        TopicSpec {
            name: "impeachment",
            keywords: &[
                "impeachment", "pelosi", "democrats", "impeach", "nancy", "inquiry", "speaker",
                "house", "congress", "testimony", "mueller", "subpoena",
            ],
            kind: TopicKind::NewsAndTwitter,
            virality: 0.85,
        },
        TopicSpec {
            name: "derby",
            keywords: &[
                "derby", "horse", "kentucky", "race", "win", "belmont", "maximum", "winner",
                "security", "racing", "jockey", "disqualified",
            ],
            kind: TopicKind::NewsAndTwitter,
            virality: 0.6,
        },
        // ---- Table 7 Twitter-only chatter ----
        TopicSpec {
            name: "cartoon",
            keywords: &[
                "matt", "cartoonist", "telegraph", "cartoons", "sketch", "drawing", "funny",
                "caption",
            ],
            kind: TopicKind::TwitterOnly,
            virality: 0.3,
        },
        TopicSpec {
            name: "social_media",
            keywords: &[
                "whatsapp", "facebook", "videos", "zuckerberg", "user", "privacy", "app",
                "instagram", "feed",
            ],
            kind: TopicKind::TwitterOnly,
            virality: 0.5,
        },
        TopicSpec {
            name: "thrones",
            keywords: &[
                "thrones", "spoilers", "season", "episode", "review", "finale", "dragon",
                "winterfell", "stark",
            ],
            kind: TopicKind::TwitterOnly,
            virality: 0.7,
        },
        TopicSpec {
            name: "coffee",
            keywords: &[
                "sleep", "coffee", "lovers", "tea", "studying", "morning", "perfect", "cozy",
                "caffeine",
            ],
            kind: TopicKind::TwitterOnly,
            virality: 0.2,
        },
        TopicSpec {
            name: "food",
            keywords: &[
                "rice", "delicious", "sandwiches", "fried", "dish", "cheeses", "recipe",
                "dinner", "tasty", "homemade",
            ],
            kind: TopicKind::TwitterOnly,
            virality: 0.25,
        },
    ]
}

/// Generic filler vocabulary mixed into every document so corpora have
/// realistic word-frequency profiles (and stopword removal has work).
pub const FILLER: &[&str] = &[
    "the", "a", "of", "to", "in", "on", "for", "with", "as", "by", "at", "from", "this",
    "that", "it", "was", "is", "are", "has", "have", "had", "said", "says", "will", "would",
    "could", "new", "more", "also", "after", "before", "over", "under", "about", "between",
    "during", "today", "yesterday", "week", "month", "year", "people", "time", "report",
    "according", "officials", "statement", "source", "country", "world", "city", "group",
    "plan", "move", "change", "issue", "decision", "meeting", "announcement",
];

/// News outlet handles used for tweet `@mentions` and article sources.
pub const OUTLETS: &[&str] = &[
    "nytimes", "reuters", "washtimes", "bbcworld", "guardian", "cnnbrk", "apnews", "ft",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_has_expected_shape() {
        let topics = topic_inventory();
        let news = topics.iter().filter(|t| t.kind == TopicKind::NewsAndTwitter).count();
        let twitter = topics.iter().filter(|t| t.kind == TopicKind::TwitterOnly).count();
        assert_eq!(news, 10, "one per Table 3 row");
        assert_eq!(twitter, 5, "one per Table 7 row");
    }

    #[test]
    fn names_unique() {
        let topics = topic_inventory();
        let names: std::collections::HashSet<_> = topics.iter().map(|t| t.name).collect();
        assert_eq!(names.len(), topics.len());
    }

    #[test]
    fn keyword_pools_nonempty_and_lowercase() {
        for t in topic_inventory() {
            assert!(t.keywords.len() >= 8, "{} pool too small", t.name);
            for k in t.keywords {
                assert_eq!(*k, k.to_lowercase(), "{k} must be lowercase");
            }
        }
    }

    #[test]
    fn virality_in_unit_interval() {
        for t in topic_inventory() {
            assert!((0.0..=1.0).contains(&t.virality), "{}", t.name);
        }
    }

    #[test]
    fn keyword_pools_mostly_disjoint() {
        // A couple of shared words (win/security/china) are realistic,
        // but pools must be mostly distinct or NMF cannot separate
        // them.
        let topics = topic_inventory();
        for i in 0..topics.len() {
            for j in (i + 1)..topics.len() {
                let a: std::collections::HashSet<_> = topics[i].keywords.iter().collect();
                let shared =
                    topics[j].keywords.iter().filter(|k| a.contains(*k)).count();
                assert!(
                    shared <= 2,
                    "{} and {} share {shared} keywords",
                    topics[i].name,
                    topics[j].name
                );
            }
        }
    }
}
