//! Ground-truth user trajectories for the pattern-mining workload.
//!
//! Every user belongs to a behavioral cohort, and each non-casual
//! cohort carries a **planted signature** — a short, contiguous event
//! motif injected into the user's stream at a seeded time:
//!
//! * **churn** — the user goes quiet for good after a failure burst:
//!   `Login → ApiError → ApiError → Silence`, planted at the moment
//!   the user's activity stops.
//! * **funnel (early/late)** — a strictly deepening engagement ladder
//!   `View:t → Like:t → Share:t → Reply:t` on one topic. The topic
//!   *drifts* at [`TrajectorySet::drift_at`]: early-half funnel users
//!   ladder on [`TrajectoryConfig::funnel_topic_early`], late-half
//!   users on [`TrajectoryConfig::funnel_topic_late`] — mining a
//!   window on either side of the drift point recovers a different
//!   catalog, which is the distribution-shift harness.
//! * **engagement** — a read-read-amplify arc
//!   `Login → View:e → View:e → Share:e`.
//! * **error chain** — repeated failures without churning:
//!   `Login → ApiError → ApiError → Login → ApiError`.
//!
//! Background noise draws only from `Login`/`View`/`Like` — the
//! amplification, error, and silence events appear *exclusively* in
//! plants, so a planted signature's support equals its cohort size
//! **exactly** and recovery tests can assert on precise user counts
//! (by [`nd_patterns::pattern_id`], like topics and events assert on
//! planted ground truth elsewhere in this crate).
//!
//! Cohorts are assigned by index range (exact counts, no binomial
//! wobble); all timing flows from per-user [`SplitMix64`] streams, so
//! the whole set is a pure function of [`TrajectoryConfig::seed`].

use crate::news_gen::sample_poisson;
use crate::time::{DAY, HOUR};
use nd_linalg::rng::SplitMix64;
use nd_patterns::{pattern_id, PatternEvent, SequenceConfig, SequenceDb};

/// Knobs for trajectory generation.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryConfig {
    /// Mean background events per user per active day.
    pub base_events_per_day: f64,
    /// Fraction of users who churn.
    pub churn_fraction: f64,
    /// Fraction of users who run the engagement funnel (split evenly
    /// into an early-topic half and a late-topic half).
    pub funnel_fraction: f64,
    /// Fraction of users with the read-read-amplify arc.
    pub engagement_fraction: f64,
    /// Fraction of users with the non-churning error chain.
    pub error_fraction: f64,
    /// Day offset of the concept-drift point; `None` = mid-window.
    pub drift_day: Option<u64>,
    /// Funnel topic before the drift point.
    pub funnel_topic_early: u16,
    /// Funnel topic from the drift point on.
    pub funnel_topic_late: u16,
    /// Topic of the engagement arc.
    pub engagement_topic: u16,
    /// Distinct topics appearing in background noise.
    pub n_topics: u16,
    /// RNG seed (independent of the world seed unless wired so).
    pub seed: u64,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            base_events_per_day: 0.4,
            churn_fraction: 0.15,
            funnel_fraction: 0.2,
            engagement_fraction: 0.15,
            error_fraction: 0.05,
            drift_day: None,
            funnel_topic_early: 0,
            funnel_topic_late: 1,
            engagement_topic: 2,
            n_topics: 8,
            seed: 77,
        }
    }
}

/// One planted motif and the ground truth needed to assert recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedSignature {
    /// Stable name ("churn", "funnel_early", …).
    pub name: &'static str,
    /// `nd_patterns::pattern_id` of the motif's symbol sequence —
    /// what recovery tests look up in the mined catalog.
    pub id: u64,
    /// The motif events, in order.
    pub events: Vec<PatternEvent>,
    /// Exact number of users carrying the motif.
    pub n_users: usize,
    /// Half-open time range containing every plant of this motif.
    pub window: (u64, u64),
}

/// The generated trajectory corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectorySet {
    /// Window start (unix seconds).
    pub start: u64,
    /// Window end (exclusive).
    pub end: u64,
    /// The concept-drift instant: funnel topics switch here.
    pub drift_at: u64,
    /// Per-user timestamped event streams, sorted by time.
    pub trajectories: Vec<Vec<(u64, PatternEvent)>>,
    /// Ground truth for recovery assertions.
    pub planted: Vec<PlantedSignature>,
}

impl TrajectorySet {
    /// Compresses every user's events inside `[window.0, window.1)`
    /// into a mining-ready database (one sequence per user; users
    /// silent in the window contribute empty sequences and still
    /// count toward the support base).
    pub fn sequence_db(&self, window: (u64, u64), cfg: &SequenceConfig) -> SequenceDb {
        let streams: Vec<Vec<u32>> = self
            .trajectories
            .iter()
            .map(|tr| {
                tr.iter()
                    .filter(|(ts, _)| *ts >= window.0 && *ts < window.1)
                    .map(|(_, e)| e.symbol())
                    .collect()
            })
            .collect();
        SequenceDb::from_streams(&streams, cfg)
    }

    /// [`TrajectorySet::sequence_db`] over the whole window.
    pub fn full_db(&self, cfg: &SequenceConfig) -> SequenceDb {
        self.sequence_db((self.start, self.end), cfg)
    }

    /// The planted signature with the given name, if any.
    pub fn signature(&self, name: &str) -> Option<&PlantedSignature> {
        self.planted.iter().find(|p| p.name == name)
    }
}

/// Cohort of one user, decided by index range.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Cohort {
    Churn,
    FunnelEarly,
    FunnelLate,
    Engagement,
    ErrorChain,
    Casual,
}

/// Seconds between consecutive events of one plant: tight enough that
/// run-collapsing compression never splits a motif, and offset from
/// the hour-aligned noise grid so plants interleave deterministically.
const PLANT_STEP: u64 = 60;

/// Plants stay at least this far inside their assigned half-window.
const PLANT_MARGIN: u64 = 2 * HOUR;

/// Generates the trajectory corpus for `n_users` users over `days`
/// days starting at `start` (unix seconds).
pub fn generate_trajectories(
    n_users: usize,
    start: u64,
    days: u64,
    cfg: &TrajectoryConfig,
) -> TrajectorySet {
    let days = days.max(1);
    let end = start + days * DAY;
    let drift_day = cfg.drift_day.unwrap_or(days / 2).min(days);
    let drift_at = start + drift_day * DAY;

    let n_churn = (n_users as f64 * cfg.churn_fraction) as usize;
    let n_funnel = (n_users as f64 * cfg.funnel_fraction) as usize;
    let n_funnel_early = n_funnel.div_ceil(2);
    let n_engage = (n_users as f64 * cfg.engagement_fraction) as usize;
    let n_error = (n_users as f64 * cfg.error_fraction) as usize;
    let cohort_of = |uid: usize| -> Cohort {
        let mut edge = n_churn;
        if uid < edge {
            return Cohort::Churn;
        }
        if uid < edge + n_funnel_early {
            return Cohort::FunnelEarly;
        }
        edge += n_funnel;
        if uid < edge {
            return Cohort::FunnelLate;
        }
        edge += n_engage;
        if uid < edge {
            return Cohort::Engagement;
        }
        edge += n_error;
        if uid < edge {
            return Cohort::ErrorChain;
        }
        Cohort::Casual
    };

    let churn_motif = vec![
        PatternEvent::Login,
        PatternEvent::ApiError,
        PatternEvent::ApiError,
        PatternEvent::Silence,
    ];
    let funnel_motif = |t: u16| {
        vec![
            PatternEvent::View(t),
            PatternEvent::Like(t),
            PatternEvent::Share(t),
            PatternEvent::Reply(t),
        ]
    };
    let funnel_motif_early = funnel_motif(cfg.funnel_topic_early);
    let funnel_motif_late = funnel_motif(cfg.funnel_topic_late);
    let engage_motif = vec![
        PatternEvent::Login,
        PatternEvent::View(cfg.engagement_topic),
        PatternEvent::View(cfg.engagement_topic),
        PatternEvent::Share(cfg.engagement_topic),
    ];
    let error_motif = vec![
        PatternEvent::Login,
        PatternEvent::ApiError,
        PatternEvent::ApiError,
        PatternEvent::Login,
        PatternEvent::ApiError,
    ];

    let n_topics = cfg.n_topics.max(1);
    let mut trajectories = Vec::with_capacity(n_users);
    for uid in 0..n_users {
        let mut rng =
            SplitMix64::new(cfg.seed ^ (uid as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let cohort = cohort_of(uid);

        // Churn users stop being active at a seeded cutoff; everyone
        // else is active over the whole window.
        let span = end - start;
        let active_until = if cohort == Cohort::Churn {
            start + (rng.next_range(0.3, 0.7) * span as f64) as u64
        } else {
            end
        };

        // Background noise on an hour-aligned grid: Login / View /
        // Like only, so plants own every Share/Reply/ApiError/Silence.
        let active_hours = ((active_until - start) / HOUR).max(1);
        let active_days = (active_until - start) as f64 / DAY as f64;
        let n_noise = sample_poisson(cfg.base_events_per_day * active_days, &mut rng);
        let mut events: Vec<(u64, PatternEvent)> = Vec::with_capacity(n_noise + 5);
        for _ in 0..n_noise {
            let ts = start + rng.next_u64() % active_hours * HOUR;
            let topic = rng.next_usize(n_topics as usize) as u16;
            let ev = match rng.next_u64() % 10 {
                0..=2 => PatternEvent::Login,
                3..=7 => PatternEvent::View(topic),
                _ => PatternEvent::Like(topic),
            };
            events.push((ts, ev));
        }

        // The cohort's plant, placed inside its legal window.
        let plant: Option<(&[PatternEvent], u64)> = match cohort {
            Cohort::Churn => Some((&churn_motif, active_until)),
            Cohort::FunnelEarly => {
                Some((&funnel_motif_early, plant_time(start, drift_at, &mut rng)))
            }
            Cohort::FunnelLate => Some((&funnel_motif_late, plant_time(drift_at, end, &mut rng))),
            Cohort::Engagement => Some((&engage_motif, plant_time(start, end, &mut rng))),
            Cohort::ErrorChain => Some((&error_motif, plant_time(start, end, &mut rng))),
            Cohort::Casual => None,
        };
        if let Some((motif, at)) = plant {
            for (k, &e) in motif.iter().enumerate() {
                events.push((at + 1 + k as u64 * PLANT_STEP, e));
            }
        }

        events.sort_by_key(|&(ts, _)| ts);
        trajectories.push(events);
    }

    let planted = vec![
        PlantedSignature {
            name: "churn",
            id: id_of(&churn_motif),
            events: churn_motif,
            n_users: n_churn,
            window: (start, end),
        },
        PlantedSignature {
            name: "funnel_early",
            id: id_of(&funnel_motif_early),
            events: funnel_motif_early,
            n_users: n_funnel_early,
            window: (start, drift_at),
        },
        PlantedSignature {
            name: "funnel_late",
            id: id_of(&funnel_motif_late),
            events: funnel_motif_late,
            n_users: n_funnel - n_funnel_early,
            window: (drift_at, end),
        },
        PlantedSignature {
            name: "engagement",
            id: id_of(&engage_motif),
            events: engage_motif,
            n_users: n_engage,
            window: (start, end),
        },
        PlantedSignature {
            name: "error_chain",
            id: id_of(&error_motif),
            events: error_motif,
            n_users: n_error,
            window: (start, end),
        },
    ];

    TrajectorySet { start, end, drift_at, trajectories, planted }
}

/// A plant instant inside `[lo, hi)`, at least [`PLANT_MARGIN`] from
/// both edges when the window allows it.
fn plant_time(lo: u64, hi: u64, rng: &mut SplitMix64) -> u64 {
    let (lo, hi) = if hi > lo { (lo, hi) } else { (lo, lo + 1) };
    let (a, b) = if hi - lo > 2 * PLANT_MARGIN + 1 {
        (lo + PLANT_MARGIN, hi - PLANT_MARGIN)
    } else {
        (lo, hi)
    };
    a + rng.next_u64() % (b - a)
}

/// Pattern id of a motif's symbol sequence.
fn id_of(events: &[PatternEvent]) -> u64 {
    let symbols: Vec<u32> = events.iter().map(|e| e.symbol()).collect();
    pattern_id(&symbols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MAY_2019;
    use nd_patterns::{mine, MiningConfig, SequenceConfig};

    fn small_set() -> TrajectorySet {
        generate_trajectories(400, MAY_2019, 60, &TrajectoryConfig::default())
    }

    #[test]
    fn generation_is_deterministic_and_cohort_counts_exact() {
        let a = small_set();
        let b = small_set();
        assert_eq!(a, b);
        assert_eq!(a.trajectories.len(), 400);
        assert_eq!(a.signature("churn").unwrap().n_users, 60);
        assert_eq!(a.signature("funnel_early").unwrap().n_users, 40);
        assert_eq!(a.signature("funnel_late").unwrap().n_users, 40);
        assert_eq!(a.signature("engagement").unwrap().n_users, 60);
        assert_eq!(a.signature("error_chain").unwrap().n_users, 20);
    }

    #[test]
    fn noise_never_emits_plant_only_events() {
        let set = small_set();
        // Casual users (tail of the index range) must be pure noise.
        for tr in &set.trajectories[250..] {
            for (_, e) in tr {
                assert!(
                    matches!(
                        e,
                        PatternEvent::Login | PatternEvent::View(_) | PatternEvent::Like(_)
                    ),
                    "casual user emitted {e:?}"
                );
            }
        }
    }

    #[test]
    fn events_are_time_sorted_and_inside_the_window() {
        let set = small_set();
        for tr in &set.trajectories {
            for pair in tr.windows(2) {
                assert!(pair[0].0 <= pair[1].0);
            }
            for &(ts, _) in tr {
                assert!(ts >= set.start && ts < set.end + DAY, "plant tail near end");
            }
        }
    }

    #[test]
    fn planted_motifs_survive_compression_with_exact_support() {
        let set = small_set();
        let db = set.full_db(&SequenceConfig::default());
        let mined = mine(
            &db,
            &MiningConfig { min_support: 0.02, min_users: 4, min_length: 2, max_length: 5 },
        );
        for name in ["churn", "engagement", "error_chain"] {
            let sig = set.signature(name).unwrap();
            let symbols: Vec<u32> = sig.events.iter().map(|e| e.symbol()).collect();
            let found = mined
                .iter()
                .find(|m| m.sequence == symbols)
                .unwrap_or_else(|| panic!("{name} motif not mined"));
            assert_eq!(found.support as usize, sig.n_users, "{name} support must be exact");
        }
    }

    #[test]
    fn drift_moves_the_funnel_topic_across_windows() {
        let set = small_set();
        let scfg = SequenceConfig::default();
        let mcfg =
            MiningConfig { min_support: 0.02, min_users: 4, min_length: 4, max_length: 4 };
        let early = set.signature("funnel_early").unwrap();
        let late = set.signature("funnel_late").unwrap();
        let early_syms: Vec<u32> = early.events.iter().map(|e| e.symbol()).collect();
        let late_syms: Vec<u32> = late.events.iter().map(|e| e.symbol()).collect();

        let before = mine(&set.sequence_db((set.start, set.drift_at), &scfg), &mcfg);
        assert!(before.iter().any(|m| m.sequence == early_syms));
        assert!(!before.iter().any(|m| m.sequence == late_syms));

        let after = mine(&set.sequence_db((set.drift_at, set.end), &scfg), &mcfg);
        assert!(after.iter().any(|m| m.sequence == late_syms));
        assert!(!after.iter().any(|m| m.sequence == early_syms));
    }
}
