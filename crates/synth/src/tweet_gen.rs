//! Tweet text generation.
//!
//! Tweets are short, keyword-dense, and carry the social-media
//! furniture the pipeline must handle: `@mentions` of news outlets
//! (the signal MABED's mention-anomaly measure counts), `#hashtags`,
//! and shortened URLs.

use crate::topics::{FILLER, OUTLETS};
use nd_linalg::rng::SplitMix64;

/// Generates one tweet's text about a topic.
///
/// Roughly half the words are topical. With fixed probabilities the
/// tweet carries an outlet `@mention` (0.6), a topical `#hashtag`
/// (0.4), and a shortened URL (0.3).
pub fn tweet_text(keywords: &[&str], rng: &mut SplitMix64) -> String {
    let len = 7 + rng.next_usize(10);
    let mut words: Vec<String> = Vec::with_capacity(len + 3);

    if rng.next_bool(0.6) {
        words.push(format!("@{}", OUTLETS[rng.next_usize(OUTLETS.len())]));
    }
    for _ in 0..len {
        if rng.next_bool(0.5) {
            words.push(keywords[rng.next_usize(keywords.len())].to_string());
        } else {
            words.push(FILLER[rng.next_usize(FILLER.len())].to_string());
        }
    }
    if rng.next_bool(0.4) {
        words.push(format!("#{}", keywords[rng.next_usize(keywords.len())]));
    }
    if rng.next_bool(0.3) {
        words.push(format!("https://t.co/{:08x}", rng.next_u64() as u32));
    }
    words.join(" ")
}

/// Counts `@mentions` in a generated tweet (cheap scan; the full
/// tokenizer lives in `nd-text`).
pub fn mention_count(text: &str) -> usize {
    text.split_whitespace().filter(|w| w.starts_with('@') && w.len() > 1).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topics::topic_inventory;

    #[test]
    fn tweets_contain_topic_keywords() {
        let topics = topic_inventory();
        let mut rng = SplitMix64::new(11);
        let mut topical_total = 0;
        for _ in 0..50 {
            let t = tweet_text(topics[0].keywords, &mut rng).to_lowercase();
            topical_total +=
                topics[0].keywords.iter().filter(|k| t.contains(*k)).count().min(1);
        }
        assert!(topical_total >= 45, "almost every tweet should be on-topic");
    }

    #[test]
    fn mentions_appear_at_expected_rate() {
        let topics = topic_inventory();
        let mut rng = SplitMix64::new(13);
        let with_mentions = (0..1000)
            .filter(|_| mention_count(&tweet_text(topics[1].keywords, &mut rng)) > 0)
            .count();
        assert!(
            (450..750).contains(&with_mentions),
            "~60% of tweets should mention an outlet, got {with_mentions}/1000"
        );
    }

    #[test]
    fn hashtags_and_urls_present_in_population() {
        let topics = topic_inventory();
        let mut rng = SplitMix64::new(17);
        let tweets: Vec<String> =
            (0..200).map(|_| tweet_text(topics[2].keywords, &mut rng)).collect();
        assert!(tweets.iter().any(|t| t.contains('#')));
        assert!(tweets.iter().any(|t| t.contains("https://t.co/")));
    }

    #[test]
    fn length_reasonable() {
        let topics = topic_inventory();
        let mut rng = SplitMix64::new(19);
        for _ in 0..100 {
            let t = tweet_text(topics[0].keywords, &mut rng);
            let n = t.split_whitespace().count();
            assert!((7..=20).contains(&n), "tweet had {n} tokens: {t}");
        }
    }

    #[test]
    fn mention_count_works() {
        assert_eq!(mention_count("@a hello @b"), 2);
        assert_eq!(mention_count("no mentions @ alone"), 0);
    }
}
