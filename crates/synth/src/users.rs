//! Synthetic Twitter users.
//!
//! Follower counts follow a power law (most users tiny, a heavy tail
//! of influencers), matching the paper's assumption that "influencers
//! (users with a high number of followers) have a huge role in
//! spreading the information".

use nd_linalg::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// A Twitter user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct User {
    /// Dense user id.
    pub id: u32,
    /// Handle (`user123`, or `influencerN` for the planted tail).
    pub handle: String,
    /// Follower count (power-law distributed).
    pub followers: u64,
    /// Friends count (correlates weakly with followers).
    pub friends: u64,
    /// Lifetime retweet count (bookkeeping statistic from §5.1).
    pub retweets_total: u64,
}

impl User {
    /// The paper's Table 2 follower bucket: 0 (<100), 1 (100–1000),
    /// 2 (>1000).
    pub fn follower_bucket(&self) -> u8 {
        crate::engagement::bucket_count(self.followers)
    }

    /// Influencer = follower bucket 2.
    pub fn is_influencer(&self) -> bool {
        self.follower_bucket() == 2
    }
}

/// Generates `n` users, guaranteeing at least `min_influencers` in the
/// `>1000`-follower bucket (planted explicitly so every world has a
/// usable influencer population regardless of power-law luck).
pub fn generate_users(n: usize, min_influencers: usize, seed: u64) -> Vec<User> {
    let mut rng = SplitMix64::new(seed ^ 0xFACE);
    let mut users = Vec::with_capacity(n);
    for id in 0..n {
        let planted = id < min_influencers;
        let followers = if planted {
            2_000 + rng.next_powerlaw(1.6, 5_000_000)
        } else {
            rng.next_powerlaw(1.8, 2_000_000)
        };
        let friends = (followers / 10).max(10) + rng.next_usize(200) as u64;
        users.push(User {
            id: id as u32,
            handle: if planted {
                format!("influencer{id}")
            } else {
                format!("user{id}")
            },
            followers,
            friends,
            retweets_total: 0,
        });
    }
    users
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let users = generate_users(500, 10, 1);
        assert_eq!(users.len(), 500);
        assert_eq!(users[0].id, 0);
        assert_eq!(users[499].id, 499);
    }

    #[test]
    fn planted_influencers_have_big_followings() {
        let users = generate_users(200, 15, 2);
        for u in &users[..15] {
            assert!(u.is_influencer(), "{} has {} followers", u.handle, u.followers);
            assert!(u.handle.starts_with("influencer"));
        }
    }

    #[test]
    fn follower_distribution_is_bottom_heavy() {
        let users = generate_users(2000, 0, 3);
        let small = users.iter().filter(|u| u.followers < 100).count();
        assert!(
            small as f64 / users.len() as f64 > 0.6,
            "power law should be bottom-heavy ({small}/2000 small)"
        );
        assert!(users.iter().any(|u| u.followers > 10_000), "tail should exist");
    }

    #[test]
    fn buckets_match_table2() {
        let mk = |followers| User {
            id: 0,
            handle: "u".into(),
            followers,
            friends: 0,
            retweets_total: 0,
        };
        assert_eq!(mk(99).follower_bucket(), 0);
        assert_eq!(mk(100).follower_bucket(), 1);
        assert_eq!(mk(1000).follower_bucket(), 1);
        assert_eq!(mk(1001).follower_bucket(), 2);
    }

    #[test]
    fn deterministic() {
        let a = generate_users(100, 5, 9);
        let b = generate_users(100, 5, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.followers, y.followers);
        }
    }
}
