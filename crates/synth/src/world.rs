//! The assembled synthetic world.
//!
//! `World::generate` plants events, creates the user population, then
//! walks the collection window hour by hour emitting news articles and
//! tweets whose rates follow the planted burst envelopes. Engagement
//! (likes/retweets) is drawn from the calibrated ground-truth model.

use crate::engagement::EngagementModel;
use crate::events::{plant_events, GroundTruthEvent};
use crate::news_gen;
use crate::time::{HOUR, MAY_2019};
use crate::topics::{topic_inventory, TopicKind, TopicSpec};
use crate::tweet_gen;
use crate::users::{generate_users, User};
use nd_linalg::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// World-generation parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Window start (unix seconds).
    pub start: u64,
    /// Window length in days (the paper collected for ~5 months).
    pub days: u64,
    /// Twitter user population size.
    pub n_users: usize,
    /// Guaranteed influencer count within the population.
    pub min_influencers: usize,
    /// Baseline news articles per topic per hour.
    pub news_base_rate: f64,
    /// Baseline tweets per topic per hour.
    pub tweet_base_rate: f64,
    /// Engagement ground-truth parameters.
    pub engagement: EngagementModel,
    /// Master seed.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            start: MAY_2019,
            days: 150,
            n_users: 4_000,
            min_influencers: 120,
            news_base_rate: 0.35,
            tweet_base_rate: 0.25,
            engagement: EngagementModel::default(),
            seed: 42,
        }
    }
}

impl WorldConfig {
    /// A scaled-down world for unit/integration tests (≈ 2 weeks).
    pub fn small() -> Self {
        WorldConfig {
            days: 14,
            n_users: 400,
            min_influencers: 30,
            news_base_rate: 0.3,
            tweet_base_rate: 0.25,
            ..Default::default()
        }
    }
}

/// A generated news article.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NewsArticle {
    /// Dense article id.
    pub id: u64,
    /// Publication time (unix seconds).
    pub timestamp: u64,
    /// Source outlet handle.
    pub source: String,
    /// Headline.
    pub title: String,
    /// Full body (what the scraper recovers).
    pub content: String,
    /// Truncated first paragraph (what NewsAPI returns).
    pub snippet: String,
    /// Ground truth: generating topic index (evaluation only — the
    /// pipeline never reads this).
    pub gt_topic: usize,
}

/// A generated tweet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tweet {
    /// Dense tweet id.
    pub id: u64,
    /// Post time (unix seconds).
    pub timestamp: u64,
    /// Author's user id.
    pub author_id: u32,
    /// Author handle (denormalized, as the Twitter API returns it).
    pub author_handle: String,
    /// Author follower count at post time.
    pub author_followers: u64,
    /// Tweet text.
    pub text: String,
    /// Likes (favorites).
    pub likes: u64,
    /// Retweets.
    pub retweets: u64,
    /// Ground truth: generating topic index (evaluation only).
    pub gt_topic: usize,
    /// Ground truth: content virality fed to the engagement model
    /// (evaluation only).
    pub gt_virality: f64,
}

/// The generated world.
#[derive(Debug, Clone)]
pub struct World {
    /// Configuration used.
    pub config: WorldConfig,
    /// Topic inventory (index space for `gt_topic`).
    pub topics: Vec<TopicSpec>,
    /// Planted ground-truth events.
    pub events: Vec<GroundTruthEvent>,
    /// User population.
    pub users: Vec<User>,
    /// News corpus, ordered by timestamp.
    pub articles: Vec<NewsArticle>,
    /// Tweet corpus, ordered by timestamp.
    pub tweets: Vec<Tweet>,
}

impl World {
    /// Generates a world deterministically from the configuration.
    pub fn generate(config: WorldConfig) -> World {
        let topics = topic_inventory();
        let events = plant_events(&topics, config.start, config.days, config.seed);
        let users = generate_users(config.n_users, config.min_influencers, config.seed);
        let mut rng = SplitMix64::new(config.seed ^ 0xA11CE);

        // Author sampling weights: influencers tweet more.
        let author_weights: Vec<f64> =
            users.iter().map(|u| 1.0 + (u.followers as f64).sqrt() / 40.0).collect();

        let mut articles = Vec::new();
        let mut tweets = Vec::new();
        let n_hours = config.days * 24;

        for h in 0..n_hours {
            let ts_hour = config.start + h * HOUR;
            for (topic_idx, spec) in topics.iter().enumerate() {
                // Strongest active burst envelope for this topic —
                // news sees the envelope directly, Twitter sees it
                // after the per-event echo lag.
                let news_burst: f64 = events
                    .iter()
                    .filter(|e| e.topic == topic_idx)
                    .map(|e| e.envelope(ts_hour))
                    .fold(0.0, f64::max);
                let burst: f64 = events
                    .iter()
                    .filter(|e| e.topic == topic_idx)
                    .map(|e| e.twitter_envelope(ts_hour))
                    .fold(0.0, f64::max);

                // --- News ---
                if spec.kind == TopicKind::NewsAndTwitter {
                    let rate = config.news_base_rate * (1.0 + news_burst);
                    for _ in 0..news_gen::sample_poisson(rate, &mut rng) {
                        let ts = ts_hour + rng.next_usize(HOUR as usize) as u64;
                        let content = news_gen::article_body(spec.keywords, &mut rng);
                        articles.push(NewsArticle {
                            id: articles.len() as u64,
                            timestamp: ts,
                            source: news_gen::pick_source(&mut rng).to_string(),
                            title: news_gen::headline(spec.keywords, &mut rng),
                            snippet: news_gen::snippet_of(&content),
                            content,
                            gt_topic: topic_idx,
                        });
                    }
                }

                // --- Tweets ---
                let tweet_burst_gain =
                    if spec.kind == TopicKind::NewsAndTwitter { 1.3 } else { 1.0 };
                let rate = config.tweet_base_rate * (1.0 + tweet_burst_gain * burst);
                // Content virality is a property of the *story*, not
                // of the instant: inside a burst it is the topic base
                // scaled by the burst's peak intensity (constant over
                // the event — the signal a per-event document
                // embedding can actually recover); background chatter
                // gets the dampened topic base.
                let peak: f64 = events
                    .iter()
                    .filter(|e| e.topic == topic_idx)
                    .filter(|e| e.twitter_envelope(ts_hour) > 0.0)
                    .map(|e| e.intensity)
                    .fold(0.0, f64::max);
                let virality = if peak > 0.0 {
                    spec.virality * (0.45 + 0.55 * (peak / 10.0).min(1.0))
                } else {
                    spec.virality * 0.35
                };
                for _ in 0..news_gen::sample_poisson(rate, &mut rng) {
                    let ts = ts_hour + rng.next_usize(HOUR as usize) as u64;
                    let author = &users[rng.sample_weighted(&author_weights)];
                    let engagement = config.engagement.sample(
                        virality,
                        author.follower_bucket(),
                        ts,
                        &mut rng,
                    );
                    tweets.push(Tweet {
                        id: tweets.len() as u64,
                        timestamp: ts,
                        author_id: author.id,
                        author_handle: author.handle.clone(),
                        author_followers: author.followers,
                        text: tweet_gen::tweet_text(spec.keywords, &mut rng),
                        likes: engagement.likes,
                        retweets: engagement.retweets,
                        gt_topic: topic_idx,
                        gt_virality: virality,
                    });
                }
            }
        }

        articles.sort_by_key(|a| a.timestamp);
        tweets.sort_by_key(|t| t.timestamp);
        // Re-assign ids in time order (stable, deterministic).
        for (i, a) in articles.iter_mut().enumerate() {
            a.id = i as u64;
        }
        for (i, t) in tweets.iter_mut().enumerate() {
            t.id = i as u64;
        }

        World { config, topics, events, users, articles, tweets }
    }

    /// End of the collection window.
    pub fn end(&self) -> u64 {
        self.config.start + self.config.days * crate::time::DAY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        World::generate(WorldConfig::small())
    }

    #[test]
    fn generates_nonempty_corpora() {
        let w = small_world();
        assert!(w.articles.len() > 500, "articles: {}", w.articles.len());
        assert!(w.tweets.len() > 500, "tweets: {}", w.tweets.len());
    }

    #[test]
    fn corpora_sorted_and_ids_dense() {
        let w = small_world();
        for pair in w.articles.windows(2) {
            assert!(pair[0].timestamp <= pair[1].timestamp);
        }
        for (i, t) in w.tweets.iter().enumerate() {
            assert_eq!(t.id, i as u64);
        }
    }

    #[test]
    fn timestamps_inside_window() {
        let w = small_world();
        for a in &w.articles {
            assert!(a.timestamp >= w.config.start && a.timestamp < w.end());
        }
        for t in &w.tweets {
            assert!(t.timestamp >= w.config.start && t.timestamp < w.end());
        }
    }

    #[test]
    fn twitter_only_topics_never_in_news() {
        let w = small_world();
        for a in &w.articles {
            assert_eq!(w.topics[a.gt_topic].kind, TopicKind::NewsAndTwitter);
        }
        // But they do exist on Twitter.
        let twitter_only_tweets = w
            .tweets
            .iter()
            .filter(|t| w.topics[t.gt_topic].kind == TopicKind::TwitterOnly)
            .count();
        assert!(twitter_only_tweets > 50);
    }

    #[test]
    fn bursts_raise_volume() {
        let w = small_world();
        // Pick a news event; compare in-burst vs out-of-burst hourly
        // article volume for its topic.
        let ev = w
            .events
            .iter()
            .find(|e| {
                w.topics[e.topic].kind == TopicKind::NewsAndTwitter
                    && e.end <= w.end()
                    && e.intensity >= 5.0
            })
            .expect("some strong news event inside the window");
        let len_h = ((ev.end - ev.start) / HOUR).max(1);
        let inside = w
            .articles
            .iter()
            .filter(|a| a.gt_topic == ev.topic && a.timestamp >= ev.start && a.timestamp < ev.end)
            .count() as f64
            / len_h as f64;
        let total_h = w.config.days * 24;
        let outside = w
            .articles
            .iter()
            .filter(|a| {
                a.gt_topic == ev.topic && !(a.timestamp >= ev.start && a.timestamp < ev.end)
            })
            .count() as f64
            / (total_h - len_h).max(1) as f64;
        assert!(
            inside > outside * 1.5,
            "burst volume {inside:.3}/h vs baseline {outside:.3}/h"
        );
    }

    #[test]
    fn tweet_engagement_fields_consistent() {
        let w = small_world();
        for t in w.tweets.iter().take(500) {
            assert!((0.0..=1.0).contains(&t.gt_virality));
            let author = &w.users[t.author_id as usize];
            assert_eq!(author.followers, t.author_followers);
            assert_eq!(author.handle, t.author_handle);
        }
    }

    #[test]
    fn deterministic() {
        let a = small_world();
        let b = small_world();
        assert_eq!(a.articles.len(), b.articles.len());
        assert_eq!(a.tweets.len(), b.tweets.len());
        assert_eq!(a.tweets[0].text, b.tweets[0].text);
        assert_eq!(a.tweets[0].likes, b.tweets[0].likes);
    }

    #[test]
    fn snippet_is_prefix_of_content() {
        let w = small_world();
        for a in w.articles.iter().take(100) {
            assert!(a.content.starts_with(a.snippet.as_str()));
            assert!(a.snippet.len() <= a.content.len());
        }
    }
}
