//! Rule-plus-exception English lemmatizer.
//!
//! The NewsTM pipeline (paper §4.2) "extracts lemmas to minimize the
//! vocabulary and store only the base root". Lacking SpaCy, we use a
//! two-tier lemmatizer: a table of irregular forms (common verbs and
//! nouns) backed by ordered suffix-rewrite rules with a small
//! morphological sanity check (a candidate lemma must keep at least
//! one vowel and three characters, or the rule is skipped).

use std::collections::HashMap;
use std::sync::OnceLock;

/// Irregular form → lemma table. Covers the high-frequency irregular
/// verbs/nouns that dominate news prose; everything else goes through
/// the suffix rules.
const IRREGULAR: &[(&str, &str)] = &[
    // be / have / do and friends
    ("am", "be"), ("is", "be"), ("are", "be"), ("was", "be"), ("were", "be"),
    ("been", "be"), ("being", "be"),
    ("has", "have"), ("had", "have"), ("having", "have"),
    ("does", "do"), ("did", "do"), ("done", "do"), ("doing", "do"),
    // common irregular verbs
    ("went", "go"), ("gone", "go"), ("goes", "go"),
    ("said", "say"), ("says", "say"),
    ("made", "make"), ("making", "make"),
    ("took", "take"), ("taken", "take"), ("taking", "take"),
    ("came", "come"), ("coming", "come"),
    ("saw", "see"), ("seen", "see"), ("seeing", "see"),
    ("got", "get"), ("gotten", "get"), ("getting", "get"),
    ("gave", "give"), ("given", "give"), ("giving", "give"),
    ("found", "find"), ("finding", "find"),
    ("told", "tell"), ("telling", "tell"),
    ("became", "become"), ("becoming", "become"),
    ("left", "leave"), ("leaving", "leave"),
    ("felt", "feel"), ("feeling", "feel"),
    ("brought", "bring"), ("bringing", "bring"),
    ("began", "begin"), ("begun", "begin"), ("beginning", "begin"),
    ("kept", "keep"), ("keeping", "keep"),
    ("held", "hold"), ("holding", "hold"),
    ("wrote", "write"), ("written", "write"), ("writing", "write"),
    ("stood", "stand"), ("standing", "stand"),
    ("heard", "hear"), ("hearing", "hear"),
    ("let", "let"), ("met", "meet"), ("meeting", "meet"),
    ("ran", "run"), ("running", "run"),
    ("paid", "pay"), ("paying", "pay"),
    ("sat", "sit"), ("sitting", "sit"),
    ("spoke", "speak"), ("spoken", "speak"), ("speaking", "speak"),
    ("lay", "lie"), ("lain", "lie"),
    ("led", "lead"), ("leading", "lead"),
    ("grew", "grow"), ("grown", "grow"), ("growing", "grow"),
    ("lost", "lose"), ("losing", "lose"),
    ("fell", "fall"), ("fallen", "fall"), ("falling", "fall"),
    ("sent", "send"), ("sending", "send"),
    ("built", "build"), ("building", "build"),
    ("understood", "understand"),
    ("drew", "draw"), ("drawn", "draw"),
    ("broke", "break"), ("broken", "break"), ("breaking", "break"),
    ("spent", "spend"), ("spending", "spend"),
    ("cut", "cut"), ("cutting", "cut"),
    ("rose", "rise"), ("risen", "rise"), ("rising", "rise"),
    ("drove", "drive"), ("driven", "drive"), ("driving", "drive"),
    ("bought", "buy"), ("buying", "buy"),
    ("wore", "wear"), ("worn", "wear"),
    ("chose", "choose"), ("chosen", "choose"), ("choosing", "choose"),
    ("fought", "fight"), ("fighting", "fight"),
    ("threw", "throw"), ("thrown", "throw"), ("throwing", "throw"),
    ("caught", "catch"), ("catching", "catch"),
    ("dealt", "deal"), ("dealing", "deal"),
    ("won", "win"), ("winning", "win"),
    ("sought", "seek"), ("seeking", "seek"),
    ("voted", "vote"), ("voting", "vote"), ("votes", "vote"),
    ("imposed", "impose"), ("imposing", "impose"), ("imposes", "impose"),
    // common irregular nouns
    ("men", "man"), ("women", "woman"), ("children", "child"),
    ("people", "person"), ("feet", "foot"), ("teeth", "tooth"),
    ("mice", "mouse"), ("geese", "goose"),
    ("media", "medium"), ("data", "datum"), ("crises", "crisis"),
    ("analyses", "analysis"), ("countries", "country"), ("parties", "party"),
    ("companies", "company"), ("policies", "policy"), ("economies", "economy"),
    ("authorities", "authority"), ("securities", "security"),
    ("lives", "life"), ("leaves", "leaf"), ("wives", "wife"),
    // comparatives worth normalizing in news text
    ("better", "good"), ("best", "good"), ("worse", "bad"), ("worst", "bad"),
    ("larger", "large"), ("largest", "large"),
    ("higher", "high"), ("highest", "high"),
    ("lower", "low"), ("lowest", "low"),
];

fn irregular_map() -> &'static HashMap<&'static str, &'static str> {
    static MAP: OnceLock<HashMap<&'static str, &'static str>> = OnceLock::new();
    MAP.get_or_init(|| IRREGULAR.iter().copied().collect())
}

fn has_vowel(s: &str) -> bool {
    s.chars().any(|c| matches!(c, 'a' | 'e' | 'i' | 'o' | 'u' | 'y'))
}

fn is_consonant_byte(b: u8) -> bool {
    b.is_ascii_lowercase() && !matches!(b, b'a' | b'e' | b'i' | b'o' | b'u')
}

/// Lemmatizes a single lower-cased word. Words with uppercase letters
/// are lower-cased first; non-alphabetic tokens pass through.
pub fn lemmatize(word: &str) -> String {
    let w = if word.chars().any(|c| c.is_uppercase()) {
        word.to_lowercase()
    } else {
        word.to_string()
    };

    if let Some(&lemma) = irregular_map().get(w.as_str()) {
        return lemma.to_string();
    }
    if w.len() <= 3 || !w.bytes().all(|b| b.is_ascii_lowercase()) {
        return w;
    }

    // --- -ies -> -y (parties handled above; generic rule for the rest)
    if w.ends_with("ies") && w.len() > 4 {
        return format!("{}y", &w[..w.len() - 3]);
    }
    // --- -sses / -shes / -ches / -xes / -zes -> strip "es"
    if (w.ends_with("sses")
        || w.ends_with("shes")
        || w.ends_with("ches")
        || w.ends_with("xes")
        || w.ends_with("zes"))
        && w.len() > 4
    {
        return w[..w.len() - 2].to_string();
    }
    // --- -ing
    if w.ends_with("ing") && w.len() > 5 {
        let stem = &w[..w.len() - 3];
        if has_vowel(stem) {
            // doubled final consonant: running -> run
            let sb = stem.as_bytes();
            if sb.len() >= 2
                && sb[sb.len() - 1] == sb[sb.len() - 2]
                && is_consonant_byte(sb[sb.len() - 1])
                && !matches!(sb[sb.len() - 1], b'l' | b's' | b'z')
            {
                return stem[..stem.len() - 1].to_string();
            }
            // CVC pattern usually dropped a silent e: making -> make
            if ends_cvce_candidate(sb) {
                return format!("{stem}e");
            }
            return stem.to_string();
        }
    }
    // --- -ed
    if w.ends_with("ed") && w.len() > 4 {
        let stem = &w[..w.len() - 2];
        if has_vowel(stem) {
            let sb = stem.as_bytes();
            if sb.len() >= 2
                && sb[sb.len() - 1] == sb[sb.len() - 2]
                && is_consonant_byte(sb[sb.len() - 1])
                && !matches!(sb[sb.len() - 1], b'l' | b's' | b'z')
            {
                return stem[..stem.len() - 1].to_string();
            }
            if ends_cvce_candidate(sb) {
                return format!("{stem}e");
            }
            return stem.to_string();
        }
    }
    // --- plural -s (but not -ss, -us, -is)
    if w.ends_with('s')
        && !w.ends_with("ss")
        && !w.ends_with("us")
        && !w.ends_with("is")
        && w.len() > 3
    {
        return w[..w.len() - 1].to_string();
    }
    w
}

/// Heuristic: stems ending consonant-vowel-consonant (last consonant
/// not w/x/y) usually came from a silent-e word (mak+ing -> make).
fn ends_cvce_candidate(stem: &[u8]) -> bool {
    let n = stem.len();
    if n < 3 {
        return false;
    }
    let (c1, v, c2) = (stem[n - 3], stem[n - 2], stem[n - 1]);
    is_consonant_byte(c1)
        && !is_consonant_byte(v)
        && is_consonant_byte(c2)
        && !matches!(c2, b'w' | b'x' | b'y')
}

/// Lemmatizes every token in a stream.
pub fn lemmatize_all(tokens: &[String]) -> Vec<String> {
    tokens.iter().map(|t| lemmatize(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irregular_verbs() {
        assert_eq!(lemmatize("was"), "be");
        assert_eq!(lemmatize("went"), "go");
        assert_eq!(lemmatize("said"), "say");
        assert_eq!(lemmatize("brought"), "bring");
        assert_eq!(lemmatize("won"), "win");
    }

    #[test]
    fn irregular_nouns() {
        assert_eq!(lemmatize("children"), "child");
        assert_eq!(lemmatize("women"), "woman");
        assert_eq!(lemmatize("parties"), "party");
        assert_eq!(lemmatize("policies"), "policy");
    }

    #[test]
    fn regular_plurals() {
        assert_eq!(lemmatize("tariffs"), "tariff");
        assert_eq!(lemmatize("elections"), "election");
        assert_eq!(lemmatize("topics"), "topic");
        assert_eq!(lemmatize("stories"), "story");
        assert_eq!(lemmatize("churches"), "church");
        assert_eq!(lemmatize("boxes"), "box");
    }

    #[test]
    fn s_endings_preserved() {
        assert_eq!(lemmatize("crisis"), "crisis");
        assert_eq!(lemmatize("chaos"), "chao"); // known limitation of rule lemmatizers
        assert_eq!(lemmatize("press"), "press");
        assert_eq!(lemmatize("virus"), "virus");
    }

    #[test]
    fn ing_forms() {
        assert_eq!(lemmatize("running"), "run");
        assert_eq!(lemmatize("making"), "make");
        assert_eq!(lemmatize("walking"), "walk");
        assert_eq!(lemmatize("falling"), "fall");
        // too short to be a gerund
        assert_eq!(lemmatize("sing"), "sing");
        assert_eq!(lemmatize("ring"), "ring");
    }

    #[test]
    fn ed_forms() {
        assert_eq!(lemmatize("walked"), "walk");
        assert_eq!(lemmatize("stopped"), "stop");
        assert_eq!(lemmatize("hoped"), "hope");
        assert_eq!(lemmatize("voted"), "vote");
    }

    #[test]
    fn comparatives() {
        assert_eq!(lemmatize("best"), "good");
        assert_eq!(lemmatize("highest"), "high");
    }

    #[test]
    fn case_folding() {
        assert_eq!(lemmatize("Elections"), "election");
        assert_eq!(lemmatize("WAS"), "be");
    }

    #[test]
    fn short_and_non_alpha_passthrough() {
        assert_eq!(lemmatize("eu"), "eu");
        assert_eq!(lemmatize("25"), "25");
        assert_eq!(lemmatize("u.s"), "u.s");
    }

    #[test]
    fn lemmatize_all_maps_stream() {
        let toks: Vec<String> = ["The", "parties", "voted"].iter().map(|s| s.to_string()).collect();
        assert_eq!(lemmatize_all(&toks), vec!["the", "party", "vote"]);
    }

    #[test]
    fn idempotent() {
        for w in ["election", "party", "vote", "make", "run", "tariff"] {
            assert_eq!(lemmatize(w), lemmatize(&lemmatize(w)));
        }
    }
}
