//! # nd-text
//!
//! Text preprocessing for the `newsdiff` workspace — the SpaCy
//! substitute described in DESIGN.md §1.
//!
//! The paper (§4.2) builds three corpora with two distinct pipelines:
//!
//! * **NewsTM** (news articles, for topic modeling): extract named
//!   entities as single concepts, lemmatize, drop punctuation and
//!   stopwords.
//! * **NewsED / TwitterED** (for MABED event detection): drop
//!   punctuation, tokenize — deliberately minimal, replicating the
//!   original MABED preprocessing.
//!
//! This crate provides those pipelines ([`pipeline`]) and the pieces
//! they are built from: a social-media-aware [`tokenizer`], a full
//! [Porter stemmer](stemmer), a rule-plus-exception English
//! [`lemmatizer`], a standard English [stopword list](stopwords), and
//! a heuristic capitalized-span [named-entity recognizer](ner).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lemmatizer;
pub mod ner;
pub mod pipeline;
pub mod sentence;
pub mod stemmer;
pub mod stopwords;
pub mod tokenizer;

pub use lemmatizer::lemmatize;
pub use ner::extract_entities;
pub use pipeline::{preprocess_event_detection, preprocess_topic_modeling};
pub use stemmer::porter_stem;
pub use stopwords::is_stopword;
pub use tokenizer::{tokenize, Token, TokenKind};
