//! Heuristic named-entity recognition.
//!
//! The NewsTM pipeline (paper §4.2) extracts named entities "to treat
//! them as concepts and not as simple terms". Without SpaCy, we use
//! the classic capitalized-span heuristic: maximal runs of capitalized
//! words (allowing internal connectors like "of" inside a run) are
//! entity candidates, except at sentence starts where capitalization
//! is uninformative unless the word also appears capitalized mid-
//! sentence elsewhere or is in the gazetteer.
//!
//! Multi-word entities are normalized by joining with `_`
//! (`"New York" → "new_york"`) so downstream vectorizers treat them as
//! single vocabulary items — exactly the "concept" behaviour the paper
//! wants.

use crate::sentence::split_sentences;
use crate::tokenizer::{tokenize, TokenKind};
use std::collections::HashSet;

/// Connector words allowed *inside* a capitalized run
/// ("Department of Justice").
const CONNECTORS: &[&str] = &["of", "the", "for", "and", "de", "la", "al"];

/// A small gazetteer of entities that may appear lowercase-ambiguous or
/// sentence-initial in news text. Users can extend it via
/// [`EntityExtractor::with_gazetteer`].
const DEFAULT_GAZETTEER: &[&str] = &[
    "brexit", "twitter", "huawei", "google", "iran", "israel", "gaza", "japan", "china",
    "alabama", "kentucky", "manchester", "washington", "congress", "senate", "tehran",
    "jerusalem", "tokyo", "reuters", "facebook", "whatsapp", "android", "eu",
];

/// Configurable entity extractor.
#[derive(Debug, Clone)]
pub struct EntityExtractor {
    gazetteer: HashSet<String>,
}

impl Default for EntityExtractor {
    fn default() -> Self {
        EntityExtractor {
            gazetteer: DEFAULT_GAZETTEER.iter().map(|s| s.to_string()).collect(),
        }
    }
}

impl EntityExtractor {
    /// Extractor with the built-in news gazetteer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds extra gazetteer entries (case-insensitive).
    pub fn with_gazetteer<I: IntoIterator<Item = S>, S: Into<String>>(mut self, extra: I) -> Self {
        self.gazetteer.extend(extra.into_iter().map(|s| s.into().to_lowercase()));
        self
    }

    /// Extracts entity spans from `text`, returned in normalized form
    /// (lowercase, multi-word joined by `_`), in order of appearance
    /// and deduplicated.
    pub fn extract(&self, text: &str) -> Vec<String> {
        // Pass 1: collect words seen capitalized mid-sentence, so that
        // sentence-initial capitals can be validated.
        let sentences = split_sentences(text);
        let mut midsentence_caps: HashSet<String> = HashSet::new();
        for sent in &sentences {
            let toks = tokenize(sent);
            let mut word_index = 0;
            for t in &toks {
                if t.kind == TokenKind::Word {
                    if word_index > 0 && starts_upper(&t.text) {
                        midsentence_caps.insert(t.lower());
                    }
                    word_index += 1;
                }
            }
        }

        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for sent in &sentences {
            let toks: Vec<_> =
                tokenize(sent).into_iter().filter(|t| t.kind == TokenKind::Word).collect();
            let mut i = 0;
            while i < toks.len() {
                let cap = starts_upper(&toks[i].text);
                let confirm = i > 0
                    || midsentence_caps.contains(&toks[i].lower())
                    || self.gazetteer.contains(&toks[i].lower());
                if cap && confirm {
                    // Extend the run.
                    let mut j = i + 1;
                    let mut last_cap = i;
                    while j < toks.len() {
                        if starts_upper(&toks[j].text) {
                            last_cap = j;
                            j += 1;
                        } else if CONNECTORS.contains(&toks[j].lower().as_str())
                            && j + 1 < toks.len()
                            && starts_upper(&toks[j + 1].text)
                        {
                            j += 1;
                        } else {
                            break;
                        }
                    }
                    let span: Vec<String> =
                        toks[i..=last_cap].iter().map(|t| t.lower()).collect();
                    // Single stopword-like capitals ("The") are not entities.
                    let is_entity = span.len() > 1
                        || (!crate::stopwords::is_stopword(&span[0])
                            && span[0].chars().count() > 1);
                    if is_entity {
                        let norm = span.join("_");
                        if seen.insert(norm.clone()) {
                            out.push(norm);
                        }
                    }
                    i = last_cap + 1;
                } else {
                    // Gazetteer hit on a lowercase word.
                    let lower = toks[i].lower();
                    if self.gazetteer.contains(&lower) && seen.insert(lower.clone()) {
                        out.push(lower);
                    }
                    i += 1;
                }
            }
        }
        out
    }
}

fn starts_upper(w: &str) -> bool {
    w.chars().next().is_some_and(|c| c.is_uppercase())
}

/// Extracts entities with the default extractor. See [`EntityExtractor`].
pub fn extract_entities(text: &str) -> Vec<String> {
    EntityExtractor::new().extract(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiword_entity_joined() {
        let e = extract_entities("Protesters gathered in New York yesterday.");
        assert!(e.contains(&"new_york".to_string()), "{e:?}");
    }

    #[test]
    fn connector_inside_entity() {
        let e = extract_entities("A ruling by the Department of Justice was issued.");
        assert!(e.contains(&"department_of_justice".to_string()), "{e:?}");
    }

    #[test]
    fn sentence_initial_capital_ignored_without_evidence() {
        let e = extract_entities("Yesterday the markets fell sharply.");
        assert!(e.is_empty(), "{e:?}");
    }

    #[test]
    fn sentence_initial_entity_confirmed_by_midsentence_use() {
        let text = "Huawei faces a ban. The ban on Huawei starts today.";
        let e = extract_entities(text);
        assert!(e.contains(&"huawei".to_string()), "{e:?}");
    }

    #[test]
    fn gazetteer_confirms_sentence_initial() {
        let e = extract_entities("Brexit talks resumed this morning.");
        assert!(e.contains(&"brexit".to_string()), "{e:?}");
    }

    #[test]
    fn person_names() {
        let e = extract_entities("Speaker Nancy Pelosi opened the impeachment inquiry.");
        assert!(e.iter().any(|x| x.contains("nancy_pelosi")), "{e:?}");
    }

    #[test]
    fn deduplication_keeps_first_occurrence() {
        let e = extract_entities("Iran issued a warning. Later Iran repeated it.");
        assert_eq!(e.iter().filter(|x| x.as_str() == "iran").count(), 1);
    }

    #[test]
    fn custom_gazetteer() {
        let ex = EntityExtractor::new().with_gazetteer(["ronews"]);
        let e = ex.extract("ronews launched a new product.");
        assert!(e.contains(&"ronews".to_string()));
    }

    #[test]
    fn the_alone_is_not_entity() {
        let e = extract_entities("He said. The end came quickly.");
        assert!(!e.contains(&"the".to_string()), "{e:?}");
    }

    #[test]
    fn empty_text() {
        assert!(extract_entities("").is_empty());
    }
}
