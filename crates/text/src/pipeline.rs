//! The paper's three preprocessing pipelines (§4.2).
//!
//! * [`preprocess_topic_modeling`] — the **NewsTM** pipeline:
//!   1. extract named entities and treat them as single concepts,
//!   2. lemmatize the remaining words,
//!   3. drop punctuation and stopwords.
//! * [`preprocess_event_detection`] — the **NewsED / TwitterED**
//!   pipeline: drop punctuation, tokenize (lowercase). Deliberately
//!   minimal to replicate the original MABED preprocessing.

use crate::lemmatizer::lemmatize;
use crate::ner::EntityExtractor;
use crate::stopwords::is_stopword;
use crate::tokenizer::{tokenize, TokenKind};
use std::collections::HashSet;

/// NewsTM pipeline: entities-as-concepts + lemmas, stopwords and
/// punctuation removed. Returns the processed token stream.
pub fn preprocess_topic_modeling(text: &str) -> Vec<String> {
    preprocess_topic_modeling_with(&EntityExtractor::new(), text)
}

/// [`preprocess_topic_modeling`] with a caller-supplied entity
/// extractor (e.g. one with a domain gazetteer).
pub fn preprocess_topic_modeling_with(extractor: &EntityExtractor, text: &str) -> Vec<String> {
    let entities = extractor.extract(text);
    // Words consumed by multi-word entities should not re-appear as
    // single terms; single-word entities replace their plain form.
    let entity_parts: HashSet<String> = entities
        .iter()
        .flat_map(|e| e.split('_').map(str::to_string))
        .collect();

    let mut out = Vec::new();
    let mut emitted_entities: HashSet<&str> = HashSet::new();

    for tok in tokenize(text) {
        match tok.kind {
            TokenKind::Word => {
                let lower = tok.lower();
                if entity_parts.contains(&lower) {
                    // Emit the next not-yet-emitted entity the first
                    // time one of its parts is reached; subsequent
                    // parts of the same entity are skipped.
                    if let Some(ent) =
                        entities.iter().find(|e| e.split('_').any(|p| p == lower))
                    {
                        if emitted_entities.insert(ent.as_str()) {
                            out.push(ent.clone());
                        }
                        continue;
                    }
                }
                if is_stopword(&lower) {
                    continue;
                }
                let lemma = lemmatize(&lower);
                if !is_stopword(&lemma) && !lemma.is_empty() {
                    out.push(lemma);
                }
            }
            TokenKind::Hashtag => {
                let tag = tok.text[1..].to_lowercase();
                if !tag.is_empty() && !is_stopword(&tag) {
                    out.push(lemmatize(&tag));
                }
            }
            TokenKind::Number => out.push(tok.text),
            // punctuation, urls, mentions, emoticons: dropped for TM
            _ => {}
        }
    }
    out
}

/// NewsED / TwitterED pipeline: punctuation removal + tokenization,
/// lowercased. URLs, emoticons and `@mentions` are dropped from the
/// token stream — MABED consumes mentions only through their *count*
/// (see [`count_mentions`]), exactly like the original pyMABED
/// preprocessing. Hashtags keep their tag text.
pub fn preprocess_event_detection(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter_map(|t| match t.kind {
            TokenKind::Word | TokenKind::Number => Some(t.lower()),
            TokenKind::Hashtag => Some(t.text[1..].to_lowercase()),
            TokenKind::Mention | TokenKind::Url | TokenKind::Punct | TokenKind::Emoticon => {
                None
            }
        })
        .filter(|t| !t.is_empty())
        .collect()
}

/// Counts `@mentions` in a tweet — the signal MABED's anomaly measure
/// is built on.
pub fn count_mentions(text: &str) -> usize {
    tokenize(text).iter().filter(|t| t.kind == TokenKind::Mention).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tm_pipeline_removes_stopwords_and_punct() {
        let toks = preprocess_topic_modeling("The tariffs were imposed, and markets fell!");
        assert!(!toks.iter().any(|t| t == "the" || t == "and" || t == ","));
        assert!(toks.contains(&"tariff".to_string()));
        assert!(toks.contains(&"impose".to_string()));
        assert!(toks.contains(&"market".to_string()));
        assert!(toks.contains(&"fall".to_string()));
    }

    #[test]
    fn tm_pipeline_entities_as_concepts() {
        let toks =
            preprocess_topic_modeling("Leaders met in New York. New York hosted the summit.");
        assert!(toks.contains(&"new_york".to_string()), "{toks:?}");
        // The parts must not appear as separate terms.
        assert!(!toks.contains(&"york".to_string()), "{toks:?}");
    }

    #[test]
    fn tm_pipeline_lemmatizes() {
        let toks = preprocess_topic_modeling("voters voted in elections");
        assert!(toks.contains(&"voter".to_string()));
        assert!(toks.contains(&"vote".to_string()));
        assert!(toks.contains(&"election".to_string()));
    }

    #[test]
    fn ed_pipeline_minimal() {
        let toks = preprocess_event_detection("Big news: tariffs UP 25%! http://t.co/x");
        assert_eq!(toks, vec!["big", "news", "tariffs", "up", "25"]);
    }

    #[test]
    fn ed_pipeline_keeps_stopwords() {
        let toks = preprocess_event_detection("the end of an era");
        assert_eq!(toks, vec!["the", "end", "of", "an", "era"]);
    }

    #[test]
    fn ed_pipeline_drops_mentions_keeps_hashtags() {
        let toks = preprocess_event_detection("@nytimes reports on #Brexit");
        assert_eq!(toks, vec!["reports", "on", "brexit"]);
    }

    #[test]
    fn count_mentions_works() {
        assert_eq!(count_mentions("@a talks to @b about @c"), 3);
        assert_eq!(count_mentions("no mentions here"), 0);
    }

    #[test]
    fn empty_inputs() {
        assert!(preprocess_topic_modeling("").is_empty());
        assert!(preprocess_event_detection("").is_empty());
    }

    #[test]
    fn tm_pipeline_keeps_numbers() {
        let toks = preprocess_topic_modeling("tariffs of 25 percent");
        assert!(toks.contains(&"25".to_string()));
    }
}
