//! Sentence splitting.
//!
//! Used by the NER heuristic (sentence-initial capitalization must not
//! be mistaken for an entity) and by the synthetic-corpus generator's
//! round-trip tests.

/// Common abbreviations that end with a period but do not end a
/// sentence.
const ABBREVIATIONS: &[&str] = &[
    "mr", "mrs", "ms", "dr", "prof", "sen", "rep", "gov", "gen", "st", "jr", "sr", "vs",
    "etc", "inc", "ltd", "corp", "co", "dept", "univ", "assn", "bros", "u.s", "u.k", "e.g",
    "i.e", "a.m", "p.m", "jan", "feb", "mar", "apr", "jun", "jul", "aug", "sep", "sept",
    "oct", "nov", "dec",
];

fn is_abbreviation(word: &str) -> bool {
    let w = word.trim_end_matches('.').to_lowercase();
    ABBREVIATIONS.contains(&w.as_str()) || (w.len() == 1 && w.chars().all(char::is_alphabetic))
}

/// Splits `text` into sentences.
///
/// A sentence boundary is a `.`, `!` or `?` that is (a) not part of a
/// known abbreviation, (b) not inside a number (`3.5`), and (c)
/// followed by whitespace-then-capital or end of text.
pub fn split_sentences(text: &str) -> Vec<String> {
    let chars: Vec<char> = text.chars().collect();
    let n = chars.len();
    let mut sentences = Vec::new();
    let mut start = 0;
    let mut i = 0;

    while i < n {
        let c = chars[i];
        if matches!(c, '.' | '!' | '?') {
            // Decimal number guard: digit.digit
            if c == '.'
                && i > 0
                && i + 1 < n
                && chars[i - 1].is_ascii_digit()
                && chars[i + 1].is_ascii_digit()
            {
                i += 1;
                continue;
            }
            // Abbreviation guard: take the word before the period.
            if c == '.' {
                let mut ws = i;
                while ws > start && !chars[ws - 1].is_whitespace() {
                    ws -= 1;
                }
                let prev_word: String = chars[ws..i].iter().collect();
                if is_abbreviation(&prev_word) {
                    i += 1;
                    continue;
                }
            }
            // Consume the punctuation run (e.g. "?!", "...").
            let mut end = i + 1;
            while end < n && matches!(chars[end], '.' | '!' | '?') {
                end += 1;
            }
            // Boundary requires whitespace+capital (or end of text).
            let mut j = end;
            while j < n && chars[j].is_whitespace() {
                j += 1;
            }
            let next_caps = j >= n || chars[j].is_uppercase() || chars[j].is_numeric() || chars[j] == '"' || chars[j] == '\u{201C}';
            if (j > end || j >= n)
                && next_caps {
                    let sent: String = chars[start..end].iter().collect();
                    let sent = sent.trim().to_string();
                    if !sent.is_empty() {
                        sentences.push(sent);
                    }
                    start = j;
                    i = j;
                    continue;
                }
            i = end;
            continue;
        }
        i += 1;
    }
    let tail: String = chars[start..].iter().collect();
    let tail = tail.trim().to_string();
    if !tail.is_empty() {
        sentences.push(tail);
    }
    sentences
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_split() {
        let s = split_sentences("First sentence. Second sentence! Third one?");
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], "First sentence.");
        assert_eq!(s[2], "Third one?");
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = split_sentences("Mr. Smith met Dr. Jones. They talked.");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], "Mr. Smith met Dr. Jones.");
    }

    #[test]
    fn decimals_do_not_split() {
        let s = split_sentences("Growth hit 3.5 percent. Markets rallied.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("3.5"));
    }

    #[test]
    fn ellipsis_handled() {
        let s = split_sentences("He paused... Then he spoke.");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn single_sentence_without_terminator() {
        let s = split_sentences("no terminal punctuation here");
        assert_eq!(s, vec!["no terminal punctuation here"]);
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("   ").is_empty());
    }

    #[test]
    fn initials_do_not_split() {
        let s = split_sentences("George W. Bush spoke. The crowd listened.");
        assert_eq!(s.len(), 2);
        assert!(s[0].starts_with("George W. Bush"));
    }
}
