//! The classic Porter (1980) stemming algorithm.
//!
//! The lemmatizer handles the NewsTM pipeline's vocabulary reduction;
//! the stemmer is provided as the cheaper, more aggressive alternative
//! (useful for the ablation benches that compare vocabulary-reduction
//! strategies). This is the original five-step algorithm, implemented
//! on ASCII lowercase input; non-ASCII words are returned unchanged.

/// Stems `word` with the Porter algorithm.
///
/// The input is lower-cased first. Words shorter than three characters
/// or containing non-ASCII-alphabetic characters are returned as-is
/// (lower-cased), matching the reference implementation's behaviour.
pub fn porter_stem(word: &str) -> String {
    let w = word.to_lowercase();
    if w.len() <= 2 || !w.bytes().all(|b| b.is_ascii_lowercase()) {
        return w;
    }
    let mut b: Vec<u8> = w.into_bytes();
    step1a(&mut b);
    step1b(&mut b);
    step1c(&mut b);
    step2(&mut b);
    step3(&mut b);
    step4(&mut b);
    step5a(&mut b);
    step5b(&mut b);
    String::from_utf8(b).expect("stemmer operates on ASCII")
}

fn is_consonant(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(b, i - 1),
        _ => true,
    }
}

/// The "measure" m of the stem `b[..len]`: the number of VC sequences.
fn measure(b: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(b, i) {
        i += 1;
    }
    loop {
        // Vowel run.
        while i < len && !is_consonant(b, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Consonant run -> one VC.
        while i < len && is_consonant(b, i) {
            i += 1;
        }
        m += 1;
        if i >= len {
            return m;
        }
    }
}

fn has_vowel(b: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(b, i))
}

fn ends_double_consonant(b: &[u8]) -> bool {
    let n = b.len();
    n >= 2 && b[n - 1] == b[n - 2] && is_consonant(b, n - 1)
}

/// *o — stem ends cvc where the final c is not w, x or y.
fn ends_cvc(b: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    let (i, j, k) = (len - 3, len - 2, len - 1);
    is_consonant(b, i)
        && !is_consonant(b, j)
        && is_consonant(b, k)
        && !matches!(b[k], b'w' | b'x' | b'y')
}

fn ends_with(b: &[u8], suffix: &str) -> bool {
    b.len() >= suffix.len() && &b[b.len() - suffix.len()..] == suffix.as_bytes()
}

/// If the word ends with `suffix` and the remaining stem has measure
/// > `min_m`, replace the suffix with `repl` and return true.
fn replace_if_m(b: &mut Vec<u8>, suffix: &str, repl: &str, min_m: usize) -> bool {
    if ends_with(b, suffix) {
        let stem_len = b.len() - suffix.len();
        if measure(b, stem_len) > min_m {
            b.truncate(stem_len);
            b.extend_from_slice(repl.as_bytes());
        }
        return true; // suffix matched (even if measure blocked the rewrite)
    }
    false
}

fn step1a(b: &mut Vec<u8>) {
    if ends_with(b, "sses") || ends_with(b, "ies") {
        b.truncate(b.len() - 2);
    } else if ends_with(b, "ss") {
        // unchanged
    } else if ends_with(b, "s") {
        b.truncate(b.len() - 1);
    }
}

fn step1b(b: &mut Vec<u8>) {
    if ends_with(b, "eed") {
        let stem_len = b.len() - 3;
        if measure(b, stem_len) > 0 {
            b.truncate(b.len() - 1);
        }
        return;
    }
    let matched = if ends_with(b, "ed") && has_vowel(b, b.len() - 2) {
        b.truncate(b.len() - 2);
        true
    } else if ends_with(b, "ing") && has_vowel(b, b.len() - 3) {
        b.truncate(b.len() - 3);
        true
    } else {
        false
    };
    if matched {
        if ends_with(b, "at") || ends_with(b, "bl") || ends_with(b, "iz") {
            b.push(b'e');
        } else if ends_double_consonant(b) && !matches!(b[b.len() - 1], b'l' | b's' | b'z') {
            b.truncate(b.len() - 1);
        } else if measure(b, b.len()) == 1 && ends_cvc(b, b.len()) {
            b.push(b'e');
        }
    }
}

fn step1c(b: &mut [u8]) {
    let n = b.len();
    if n >= 2 && b[n - 1] == b'y' && has_vowel(b, n - 1) {
        b[n - 1] = b'i';
    }
}

fn step2(b: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (suf, rep) in RULES {
        if replace_if_m(b, suf, rep, 0) {
            return;
        }
    }
}

fn step3(b: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (suf, rep) in RULES {
        if replace_if_m(b, suf, rep, 0) {
            return;
        }
    }
}

fn step4(b: &mut Vec<u8>) {
    const SUFFIXES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent",
        "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    // "ion" requires the stem to end in s or t.
    if ends_with(b, "ion") {
        let stem_len = b.len() - 3;
        if stem_len > 0
            && matches!(b[stem_len - 1], b's' | b't')
            && measure(b, stem_len) > 1
        {
            b.truncate(stem_len);
        }
        return;
    }
    for suf in SUFFIXES {
        if ends_with(b, suf) {
            let stem_len = b.len() - suf.len();
            if measure(b, stem_len) > 1 {
                b.truncate(stem_len);
            }
            return;
        }
    }
}

fn step5a(b: &mut Vec<u8>) {
    if ends_with(b, "e") {
        let stem_len = b.len() - 1;
        let m = measure(b, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(b, stem_len)) {
            b.truncate(stem_len);
        }
    }
}

fn step5b(b: &mut Vec<u8>) {
    if measure(b, b.len()) > 1 && ends_double_consonant(b) && b[b.len() - 1] == b'l' {
        b.truncate(b.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_examples() {
        // Canonical examples from Porter's paper and reference vocabulary.
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("failing", "fail"),
            ("happy", "happi"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("hopefulness", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("adjustment", "adjust"),
            ("effective", "effect"),
            ("probate", "probat"),
            ("controlling", "control"),
            ("rolling", "roll"),
        ];
        for (word, want) in cases {
            assert_eq!(porter_stem(word), want, "stem({word})");
        }
    }

    #[test]
    fn news_domain_words() {
        assert_eq!(porter_stem("elections"), "elect");
        assert_eq!(porter_stem("voting"), "vote");
        assert_eq!(porter_stem("tariffs"), "tariff");
        assert_eq!(porter_stem("politics"), porter_stem("politic"));
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(porter_stem("as"), "as");
        assert_eq!(porter_stem("be"), "be");
        assert_eq!(porter_stem("EU"), "eu");
    }

    #[test]
    fn non_ascii_passthrough() {
        assert_eq!(porter_stem("café"), "café");
    }

    #[test]
    fn lowercases_input() {
        assert_eq!(porter_stem("Running"), "run");
    }

    #[test]
    fn idempotent_on_common_words() {
        for w in ["election", "government", "economic", "president", "security"] {
            let once = porter_stem(w);
            let twice = porter_stem(&once);
            assert_eq!(once, twice, "stemming {w} should be idempotent");
        }
    }

    #[test]
    fn measure_function() {
        // m(tr) = 0, m(trouble->troubl) counts VC pairs.
        let b = b"tree".to_vec();
        assert_eq!(measure(&b, 2), 0); // "tr"
        let b = b"trouble".to_vec();
        assert_eq!(measure(&b, 7), 1);
        let b = b"oaten".to_vec();
        assert_eq!(measure(&b, 5), 2);
    }
}
