//! English stopword list.
//!
//! The NewsTM pipeline (paper §4.2) removes stopwords "because they do
//! not add any information gain". The list below is the standard
//! English function-word inventory (determiners, pronouns, auxiliaries,
//! prepositions, conjunctions, common adverbs) plus the contracted
//! forms the tokenizer keeps whole.

use std::collections::HashSet;
use std::sync::OnceLock;

/// The raw stopword inventory. Kept sorted for readability; membership
/// checks go through the hashed set in [`is_stopword`].
pub const STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "ain't", "all", "also", "am", "an",
    "and", "any", "are", "aren't", "as", "at", "be", "because", "been", "before", "being",
    "below", "between", "both", "but", "by", "can", "can't", "cannot", "could", "couldn't",
    "did", "didn't", "do", "does", "doesn't", "doing", "don't", "down", "during", "each",
    "few", "for", "from", "further", "had", "hadn't", "has", "hasn't", "have", "haven't",
    "having", "he", "he'd", "he'll", "he's", "her", "here", "here's", "hers", "herself",
    "him", "himself", "his", "how", "how's", "i", "i'd", "i'll", "i'm", "i've", "if", "in",
    "into", "is", "isn't", "it", "it's", "its", "itself", "just", "let's", "me", "more",
    "most", "mustn't", "my", "myself", "no", "nor", "not", "now", "of", "off", "on", "once",
    "only", "or", "other", "ought", "our", "ours", "ourselves", "out", "over", "own", "same",
    "shan't", "she", "she'd", "she'll", "she's", "should", "shouldn't", "so", "some", "such",
    "than", "that", "that's", "the", "their", "theirs", "them", "themselves", "then",
    "there", "there's", "these", "they", "they'd", "they'll", "they're", "they've", "this",
    "those", "through", "to", "too", "under", "until", "up", "very", "was", "wasn't", "we",
    "we'd", "we'll", "we're", "we've", "were", "weren't", "what", "what's", "when",
    "when's", "where", "where's", "which", "while", "who", "who's", "whom", "why", "why's",
    "will", "with", "won't", "would", "wouldn't", "you", "you'd", "you'll", "you're",
    "you've", "your", "yours", "yourself", "yourselves",
];

fn set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// Case-insensitive stopword membership test.
pub fn is_stopword(word: &str) -> bool {
    if set().contains(word) {
        return true;
    }
    // Avoid allocating for the common already-lowercase case.
    if word.chars().any(|c| c.is_uppercase()) {
        set().contains(word.to_lowercase().as_str())
    } else {
        false
    }
}

/// Removes stopwords from a token stream (case-insensitive).
pub fn remove_stopwords(tokens: &[String]) -> Vec<String> {
    tokens.iter().filter(|t| !is_stopword(t)).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "is", "and", "of", "to", "don't", "you're"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["brexit", "tariff", "election", "huawei", "derby"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn case_insensitive() {
        assert!(is_stopword("The"));
        assert!(is_stopword("AND"));
        assert!(!is_stopword("Brexit"));
    }

    #[test]
    fn remove_stopwords_filters() {
        let toks: Vec<String> =
            ["the", "election", "of", "may"].iter().map(|s| s.to_string()).collect();
        assert_eq!(remove_stopwords(&toks), vec!["election", "may"]);
    }

    #[test]
    fn list_has_no_duplicates() {
        let mut seen = std::collections::HashSet::new();
        for w in STOPWORDS {
            assert!(seen.insert(w), "duplicate stopword {w}");
        }
    }

    #[test]
    fn list_is_all_lowercase() {
        for w in STOPWORDS {
            assert_eq!(*w, w.to_lowercase());
        }
    }
}
