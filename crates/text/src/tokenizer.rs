//! Social-media-aware tokenizer.
//!
//! Splits raw text into typed tokens. Tweets need more care than news
//! prose: URLs, `@mentions` and `#hashtags` must survive as single
//! tokens (MABED counts mention anomalies; the feature builder matches
//! hashtag keywords), while ordinary punctuation is split off so the
//! event-detection pipelines can drop it.

/// The lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Alphabetic or alphanumeric word.
    Word,
    /// Number (integer or decimal, possibly with `%`/`,` inside).
    Number,
    /// Twitter-style `@user` mention.
    Mention,
    /// Twitter-style `#tag` hashtag.
    Hashtag,
    /// `http(s)://…` or `www.…` URL.
    Url,
    /// Punctuation run.
    Punct,
    /// Emoticon such as `:)` (detected for completeness; dropped by
    /// every pipeline in this workspace).
    Emoticon,
}

/// A token: its surface text and lexical class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Surface form, unmodified (case preserved).
    pub text: String,
    /// Lexical class.
    pub kind: TokenKind,
}

impl Token {
    /// Convenience constructor.
    pub fn new(text: impl Into<String>, kind: TokenKind) -> Self {
        Token { text: text.into(), kind }
    }

    /// Lower-cased surface form.
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }
}

const EMOTICONS: &[&str] = &[
    ":)", ":(", ":D", ":P", ";)", ":-)", ":-(", ":-D", ":'(", "<3", ":o", ":O",
];

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '\'' || c == '-' || c == '_'
}

fn classify_word(w: &str) -> TokenKind {
    let digits = w.chars().filter(|c| c.is_ascii_digit()).count();
    let alpha = w.chars().filter(|c| c.is_alphabetic()).count();
    if digits > 0 && alpha == 0 {
        TokenKind::Number
    } else {
        TokenKind::Word
    }
}

/// Tokenizes `text` into typed tokens.
///
/// Guarantees:
/// * URLs, mentions and hashtags are preserved as single tokens;
/// * contractions keep their apostrophe (`don't` is one `Word`);
/// * hyphenated compounds stay together (`state-of-the-art`);
/// * each punctuation run becomes one `Punct` token;
/// * whitespace never appears inside a token.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let n = chars.len();
    let mut i = 0;

    while i < n {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // URL?
        if c == 'h' || c == 'w' {
            if let Some(len) = match_url(&chars[i..]) {
                tokens.push(Token::new(chars[i..i + len].iter().collect::<String>(), TokenKind::Url));
                i += len;
                continue;
            }
        }

        // Mention / hashtag?
        if (c == '@' || c == '#') && i + 1 < n && is_word_char(chars[i + 1]) {
            let start = i;
            i += 1;
            while i < n && is_word_char(chars[i]) {
                i += 1;
            }
            let kind = if c == '@' { TokenKind::Mention } else { TokenKind::Hashtag };
            tokens.push(Token::new(chars[start..i].iter().collect::<String>(), kind));
            continue;
        }

        // Emoticon?
        if let Some(emo) = EMOTICONS.iter().find(|e| chars[i..].starts_with(&e.chars().collect::<Vec<_>>()[..])) {
            tokens.push(Token::new(*emo, TokenKind::Emoticon));
            i += emo.chars().count();
            continue;
        }

        // Word / number?
        if is_word_char(c) && c != '\'' && c != '-' {
            let start = i;
            while i < n && is_word_char(chars[i]) {
                i += 1;
            }
            // Trim trailing apostrophes/hyphens (e.g. from `rock-'`).
            let mut end = i;
            while end > start && matches!(chars[end - 1], '\'' | '-') {
                end -= 1;
            }
            let word: String = chars[start..end].iter().collect();
            if !word.is_empty() {
                let kind = classify_word(&word);
                tokens.push(Token::new(word, kind));
            }
            // Emit trimmed trailing punctuation.
            if end < i {
                tokens.push(Token::new(chars[end..i].iter().collect::<String>(), TokenKind::Punct));
            }
            continue;
        }

        // Punctuation run (anything else).
        let start = i;
        while i < n
            && !chars[i].is_whitespace()
            && !is_word_char(chars[i])
            && chars[i] != '@'
            && chars[i] != '#'
        {
            i += 1;
        }
        if i == start {
            // Lone apostrophe/hyphen or stray @/# — consume one char.
            i += 1;
        }
        tokens.push(Token::new(chars[start..i].iter().collect::<String>(), TokenKind::Punct));
    }
    tokens
}

/// Returns the char-length of a URL starting at the slice head, if any.
fn match_url(chars: &[char]) -> Option<usize> {
    let s: String = chars.iter().take(10).collect();
    let prefixed =
        s.starts_with("http://") || s.starts_with("https://") || s.starts_with("www.");
    if !prefixed {
        return None;
    }
    let mut len = 0;
    for &c in chars {
        if c.is_whitespace() {
            break;
        }
        len += 1;
    }
    // Strip trailing sentence punctuation from the URL.
    while len > 0 && matches!(chars[len - 1], '.' | ',' | '!' | '?' | ')' | ';' | ':') {
        len -= 1;
    }
    (len > 4).then_some(len)
}

/// Lower-cased word-like tokens only (words, numbers, hashtags without
/// the `#`); the representation the event-detection pipelines feed to
/// MABED.
pub fn word_tokens_lower(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter_map(|t| match t.kind {
            TokenKind::Word | TokenKind::Number => Some(t.lower()),
            TokenKind::Hashtag => Some(t.text[1..].to_lowercase()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(tokens: &[Token]) -> Vec<&str> {
        tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn simple_sentence() {
        let toks = tokenize("The quick brown fox.");
        assert_eq!(texts(&toks), vec!["The", "quick", "brown", "fox", "."]);
        assert_eq!(toks[4].kind, TokenKind::Punct);
    }

    #[test]
    fn contractions_stay_whole() {
        let toks = tokenize("don't can't won't");
        assert_eq!(texts(&toks), vec!["don't", "can't", "won't"]);
        assert!(toks.iter().all(|t| t.kind == TokenKind::Word));
    }

    #[test]
    fn hyphenated_compound() {
        let toks = tokenize("state-of-the-art system");
        assert_eq!(texts(&toks), vec!["state-of-the-art", "system"]);
    }

    #[test]
    fn mentions_and_hashtags() {
        let toks = tokenize("@nytimes covers #Brexit today");
        assert_eq!(toks[0].kind, TokenKind::Mention);
        assert_eq!(toks[0].text, "@nytimes");
        assert_eq!(toks[1].kind, TokenKind::Word);
        assert_eq!(toks[2].kind, TokenKind::Hashtag);
        assert_eq!(toks[2].text, "#Brexit");
    }

    #[test]
    fn urls_survive() {
        let toks = tokenize("read https://example.com/a?b=1 now");
        assert_eq!(toks[1].kind, TokenKind::Url);
        assert_eq!(toks[1].text, "https://example.com/a?b=1");
        let toks = tokenize("see www.reuters.com.");
        assert_eq!(toks[1].kind, TokenKind::Url);
        assert_eq!(toks[1].text, "www.reuters.com");
        assert_eq!(toks[2].kind, TokenKind::Punct);
    }

    #[test]
    fn bare_word_starting_with_h_or_w_not_url() {
        let toks = tokenize("however winter");
        assert!(toks.iter().all(|t| t.kind == TokenKind::Word));
    }

    #[test]
    fn numbers_classified() {
        let toks = tokenize("tariffs rose 25 percent in 2019");
        assert_eq!(toks[2].kind, TokenKind::Number);
        assert_eq!(toks[5].kind, TokenKind::Number);
    }

    #[test]
    fn emoticons_detected() {
        let toks = tokenize("great news :) wow");
        assert_eq!(toks[2].kind, TokenKind::Emoticon);
    }

    #[test]
    fn punctuation_runs_grouped() {
        let toks = tokenize("what?! really...");
        assert_eq!(texts(&toks), vec!["what", "?!", "really", "..."]);
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n\t ").is_empty());
    }

    #[test]
    fn unicode_words() {
        let toks = tokenize("café naïve Zürich");
        assert_eq!(texts(&toks), vec!["café", "naïve", "Zürich"]);
    }

    #[test]
    fn word_tokens_lower_filters_and_lowercases() {
        let ws = word_tokens_lower("RT @user: Brexit VOTE #Politics http://t.co/x !");
        assert_eq!(ws, vec!["rt", "brexit", "vote", "politics"]);
    }

    #[test]
    fn stray_at_sign_is_punct() {
        let toks = tokenize("a @ b");
        assert_eq!(toks[1].kind, TokenKind::Punct);
    }

    #[test]
    fn no_token_contains_whitespace() {
        let toks = tokenize("mixed   input with\nnewlines\tand tabs");
        assert!(toks.iter().all(|t| !t.text.chars().any(char::is_whitespace)));
    }
}
