//! Topic-coherence metrics.
//!
//! Used by the `ablation_topics` bench to compare NMF / LDA / LSA /
//! PLSI quantitatively, mirroring the short-text topic-mining
//! comparison the paper cites (Chen et al. 2019).
//!
//! * **UMass coherence** (Mimno et al. 2011): sum of
//!   `log((D(wi, wj) + 1) / D(wj))` over ordered keyword pairs —
//!   intrinsic, uses the training corpus itself.
//! * **UCI/PMI coherence** (Newman et al. 2010): average pointwise
//!   mutual information over keyword pairs.
//!
//! Both are "higher is better".

use std::collections::{HashMap, HashSet};

/// Document-frequency statistics needed by the coherence measures.
#[derive(Debug, Clone)]
pub struct CoherenceStats {
    n_docs: usize,
    doc_freq: HashMap<String, usize>,
    pair_freq: HashMap<(String, String), usize>,
}

impl CoherenceStats {
    /// Precomputes document and co-document frequencies for the given
    /// keyword universe over a tokenized corpus. Only pairs of words in
    /// `keywords` are counted, keeping the pair table small.
    pub fn compute(docs: &[Vec<String>], keywords: &HashSet<String>) -> Self {
        let mut doc_freq: HashMap<String, usize> = HashMap::new();
        let mut pair_freq: HashMap<(String, String), usize> = HashMap::new();
        for doc in docs {
            // sort+dedup instead of a HashSet round-trip: same unique
            // set, no arbitrary-order intermediate.
            let present: Vec<&String> = {
                let mut v: Vec<&String> =
                    doc.iter().filter(|t| keywords.contains(*t)).collect();
                v.sort();
                v.dedup();
                v
            };
            for w in &present {
                *doc_freq.entry((*w).clone()).or_insert(0) += 1;
            }
            for i in 0..present.len() {
                for j in (i + 1)..present.len() {
                    let key = (present[i].clone(), present[j].clone());
                    *pair_freq.entry(key).or_insert(0) += 1;
                }
            }
        }
        CoherenceStats { n_docs: docs.len(), doc_freq, pair_freq }
    }

    fn df(&self, w: &str) -> usize {
        self.doc_freq.get(w).copied().unwrap_or(0)
    }

    fn co_df(&self, a: &str, b: &str) -> usize {
        let key = if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        };
        self.pair_freq.get(&key).copied().unwrap_or(0)
    }

    /// UMass coherence of one topic's keyword list.
    pub fn umass(&self, keywords: &[String]) -> f64 {
        let mut score = 0.0;
        let mut pairs = 0usize;
        for i in 1..keywords.len() {
            for j in 0..i {
                let dj = self.df(&keywords[j]);
                if dj == 0 {
                    continue;
                }
                let co = self.co_df(&keywords[i], &keywords[j]);
                score += ((co as f64 + 1.0) / dj as f64).ln();
                pairs += 1;
            }
        }
        if pairs == 0 {
            0.0
        } else {
            score / pairs as f64
        }
    }

    /// UCI (average PMI) coherence of one topic's keyword list, with
    /// +1 smoothing on the joint count.
    pub fn uci(&self, keywords: &[String]) -> f64 {
        if self.n_docs == 0 {
            return 0.0;
        }
        let n = self.n_docs as f64;
        let mut score = 0.0;
        let mut pairs = 0usize;
        for i in 0..keywords.len() {
            for j in (i + 1)..keywords.len() {
                let di = self.df(&keywords[i]);
                let dj = self.df(&keywords[j]);
                if di == 0 || dj == 0 {
                    continue;
                }
                let co = self.co_df(&keywords[i], &keywords[j]) as f64;
                let p_ij = (co + 1.0) / n;
                let p_i = di as f64 / n;
                let p_j = dj as f64 / n;
                score += (p_ij / (p_i * p_j)).ln();
                pairs += 1;
            }
        }
        if pairs == 0 {
            0.0
        } else {
            score / pairs as f64
        }
    }
}

/// Mean UMass coherence over a whole model's topics.
pub fn mean_umass(docs: &[Vec<String>], topics: &[crate::model::Topic]) -> f64 {
    let keywords: HashSet<String> =
        topics.iter().flat_map(|t| t.keywords.iter().cloned()).collect();
    let stats = CoherenceStats::compute(docs, &keywords);
    if topics.is_empty() {
        return 0.0;
    }
    // nd-lint: allow(fp-reduction-order) — serial sum over topics in model order.
    topics.iter().map(|t| stats.umass(&t.keywords)).sum::<f64>() / topics.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Vec<String>> {
        let to_vec = |s: &str| s.split_whitespace().map(str::to_string).collect();
        vec![
            to_vec("brexit vote party"),
            to_vec("brexit vote"),
            to_vec("brexit party"),
            to_vec("tariff trade"),
            to_vec("tariff trade china"),
            to_vec("derby horse"),
        ]
    }

    fn all_keywords() -> HashSet<String> {
        ["brexit", "vote", "party", "tariff", "trade", "china", "derby", "horse"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn coherent_topic_scores_higher_than_random_mix() {
        let stats = CoherenceStats::compute(&corpus(), &all_keywords());
        let coherent: Vec<String> =
            ["brexit", "vote", "party"].iter().map(|s| s.to_string()).collect();
        let mixed: Vec<String> =
            ["brexit", "tariff", "horse"].iter().map(|s| s.to_string()).collect();
        assert!(
            stats.umass(&coherent) > stats.umass(&mixed),
            "umass coherent {} vs mixed {}",
            stats.umass(&coherent),
            stats.umass(&mixed)
        );
        assert!(stats.uci(&coherent) > stats.uci(&mixed));
    }

    #[test]
    fn frequencies_correct() {
        let stats = CoherenceStats::compute(&corpus(), &all_keywords());
        assert_eq!(stats.df("brexit"), 3);
        assert_eq!(stats.df("vote"), 2);
        assert_eq!(stats.co_df("brexit", "vote"), 2);
        assert_eq!(stats.co_df("vote", "brexit"), 2, "pair lookup must be symmetric");
        assert_eq!(stats.co_df("brexit", "horse"), 0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        let stats = CoherenceStats::compute(&[], &all_keywords());
        assert_eq!(stats.umass(&[]), 0.0);
        assert_eq!(stats.uci(&["a".to_string()]), 0.0);
    }

    #[test]
    fn unknown_keywords_skipped() {
        let stats = CoherenceStats::compute(&corpus(), &all_keywords());
        let kws: Vec<String> = ["unknown1", "unknown2"].iter().map(|s| s.to_string()).collect();
        assert_eq!(stats.umass(&kws), 0.0);
    }

    #[test]
    fn mean_umass_over_topics() {
        use crate::model::Topic;
        let topics = vec![
            Topic {
                id: 0,
                keywords: ["brexit", "vote"].iter().map(|s| s.to_string()).collect(),
                weights: vec![1.0, 0.5],
            },
            Topic {
                id: 1,
                keywords: ["tariff", "trade"].iter().map(|s| s.to_string()).collect(),
                weights: vec![1.0, 0.5],
            },
        ];
        let m = mean_umass(&corpus(), &topics);
        assert!(m.is_finite());
        assert!(m > -5.0);
    }
}
