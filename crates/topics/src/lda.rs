//! Latent Dirichlet Allocation by collapsed Gibbs sampling.
//!
//! The paper chooses NMF over LDA (§4.9) citing comparable quality at
//! lower cost; this implementation exists so the `ablation_topics`
//! bench can reproduce that comparison. Standard collapsed Gibbs
//! (Griffiths & Steyvers 2004): each token's topic assignment is
//! resampled from
//!
//! ```text
//! p(z = t) ∝ (n_dt + α) * (n_tw + β) / (n_t + Vβ)
//! ```

use crate::model::TopicModel;
use nd_linalg::rng::SplitMix64;
use nd_linalg::Mat;
use nd_vectorize::{CsrMatrix, Vocabulary};

/// LDA hyper-parameters.
#[derive(Debug, Clone)]
pub struct LdaConfig {
    /// Number of topics.
    pub n_topics: usize,
    /// Dirichlet prior on document-topic distributions.
    pub alpha: f64,
    /// Dirichlet prior on topic-term distributions.
    pub beta: f64,
    /// Gibbs sweeps.
    pub n_iter: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        LdaConfig { n_topics: 10, alpha: 0.1, beta: 0.01, n_iter: 100, seed: 42 }
    }
}

/// Collapsed-Gibbs LDA sampler.
#[derive(Debug, Clone)]
pub struct Lda {
    config: LdaConfig,
}

impl Lda {
    /// Creates a sampler with the given configuration.
    pub fn new(config: LdaConfig) -> Self {
        Lda { config }
    }

    /// Fits LDA to a **count** matrix (LDA's generative story needs
    /// integer counts; weighted inputs are rounded).
    pub fn fit(&self, counts: &CsrMatrix, vocab: &Vocabulary) -> TopicModel {
        let n_docs = counts.rows();
        let n_terms = counts.cols();
        let k = self.config.n_topics.max(1);
        let (alpha, beta) = (self.config.alpha, self.config.beta);
        let vbeta = n_terms as f64 * beta;

        // Expand the matrix into token instances.
        let mut doc_of: Vec<u32> = Vec::new();
        let mut word_of: Vec<u32> = Vec::new();
        for d in 0..n_docs {
            for (j, v) in counts.row(d).iter() {
                let c = v.round().max(0.0) as usize;
                for _ in 0..c {
                    doc_of.push(d as u32);
                    word_of.push(j as u32);
                }
            }
        }
        let n_tokens = doc_of.len();

        let mut rng = SplitMix64::new(self.config.seed);
        let mut z: Vec<u32> = (0..n_tokens).map(|_| rng.next_usize(k) as u32).collect();

        let mut n_dt = vec![0f64; n_docs * k]; // doc-topic counts
        let mut n_tw = vec![0f64; k * n_terms]; // topic-term counts
        let mut n_t = vec![0f64; k]; // topic totals
        for i in 0..n_tokens {
            let (d, w, t) = (doc_of[i] as usize, word_of[i] as usize, z[i] as usize);
            n_dt[d * k + t] += 1.0;
            n_tw[t * n_terms + w] += 1.0;
            n_t[t] += 1.0;
        }

        let mut probs = vec![0f64; k];
        for _sweep in 0..self.config.n_iter {
            for i in 0..n_tokens {
                let (d, w) = (doc_of[i] as usize, word_of[i] as usize);
                let old = z[i] as usize;
                n_dt[d * k + old] -= 1.0;
                n_tw[old * n_terms + w] -= 1.0;
                n_t[old] -= 1.0;

                for (t, p) in probs.iter_mut().enumerate() {
                    *p = (n_dt[d * k + t] + alpha) * (n_tw[t * n_terms + w] + beta)
                        / (n_t[t] + vbeta);
                }
                let new = rng.sample_weighted(&probs);
                z[i] = new as u32;
                n_dt[d * k + new] += 1.0;
                n_tw[new * n_terms + w] += 1.0;
                n_t[new] += 1.0;
            }
        }

        // Posterior means.
        let mut doc_topic = Mat::zeros(n_docs, k);
        for d in 0..n_docs {
            // nd-lint: allow(fp-reduction-order) — serial sum over topic indices 0..k.
            let total: f64 = (0..k).map(|t| n_dt[d * k + t]).sum::<f64>() + k as f64 * alpha;
            for t in 0..k {
                doc_topic.set(d, t, (n_dt[d * k + t] + alpha) / total);
            }
        }
        let mut topic_term = Mat::zeros(k, n_terms);
        for t in 0..k {
            let total = n_t[t] + vbeta;
            for w in 0..n_terms {
                topic_term.set(t, w, (n_tw[t * n_terms + w] + beta) / total);
            }
        }

        // Objective: negative log-likelihood of tokens under the
        // posterior means (lower is better).
        let mut nll = 0.0;
        for i in 0..n_tokens {
            let (d, w) = (doc_of[i] as usize, word_of[i] as usize);
            let mut p = 0.0;
            for t in 0..k {
                p += doc_topic.get(d, t) * topic_term.get(t, w);
            }
            nll -= p.max(1e-300).ln();
        }

        TopicModel {
            doc_topic,
            topic_term,
            vocab: vocab.clone(),
            objective: nll,
            iterations: self.config.n_iter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_vectorize::DtmBuilder;

    fn planted_corpus() -> Vec<Vec<String>> {
        let sports = ["derby", "horse", "race", "win", "kentucky"];
        let tech = ["huawei", "google", "android", "network", "smartphone"];
        let mut docs = Vec::new();
        for i in 0..30 {
            let pool: &[&str] = if i % 2 == 0 { &sports } else { &tech };
            docs.push((0..15).map(|j| pool[(i * 3 + j) % pool.len()].to_string()).collect());
        }
        docs
    }

    #[test]
    fn distributions_are_proper() {
        let dtm = DtmBuilder::new().build(&planted_corpus());
        let m = Lda::new(LdaConfig { n_topics: 2, n_iter: 30, ..Default::default() })
            .fit(dtm.counts(), dtm.vocab());
        for d in 0..m.doc_topic.rows() {
            let s: f64 = m.doc_topic.row(d).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "doc {d} sums to {s}");
        }
        for t in 0..m.n_topics() {
            let s: f64 = m.topic_term.row(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "topic {t} sums to {s}");
        }
    }

    #[test]
    fn separates_planted_topics() {
        let dtm = DtmBuilder::new().build(&planted_corpus());
        let m = Lda::new(LdaConfig { n_topics: 2, n_iter: 80, seed: 3, ..Default::default() })
            .fit(dtm.counts(), dtm.vocab());
        let even = m.dominant_topic(0).unwrap();
        let odd = m.dominant_topic(1).unwrap();
        assert_ne!(even, odd);
        let mut correct = 0;
        for d in 0..30 {
            let want = if d % 2 == 0 { even } else { odd };
            if m.dominant_topic(d) == Some(want) {
                correct += 1;
            }
        }
        assert!(correct >= 27, "only {correct}/30 documents assigned consistently");
    }

    #[test]
    fn deterministic_by_seed() {
        let dtm = DtmBuilder::new().build(&planted_corpus());
        let cfg = LdaConfig { n_topics: 2, n_iter: 10, seed: 9, ..Default::default() };
        let a = Lda::new(cfg.clone()).fit(dtm.counts(), dtm.vocab());
        let b = Lda::new(cfg).fit(dtm.counts(), dtm.vocab());
        assert_eq!(a.doc_topic, b.doc_topic);
    }

    #[test]
    fn empty_corpus_safe() {
        let dtm = DtmBuilder::new().build(&[]);
        let m = Lda::new(LdaConfig::default()).fit(dtm.counts(), dtm.vocab());
        assert_eq!(m.doc_topic.rows(), 0);
    }
}
