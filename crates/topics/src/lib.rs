//! # nd-topics
//!
//! Topic modeling (paper §3.2). The production algorithm is
//! [Non-Negative Matrix Factorization](nmf) with the Frobenius
//! objective and Lee–Seung multiplicative updates — exactly Eq. (6)–(8)
//! of the paper. Three comparators from the paper's related-work
//! discussion are implemented for the design-choice ablation
//! ([`lda`] by collapsed Gibbs sampling, [`lsa`] by truncated SVD,
//! and [`plsi`] by EM), along with [topic-coherence metrics](coherence)
//! (UMass / UCI) to compare them quantitatively.
//!
//! All algorithms consume the weighted document-term matrix produced
//! by `nd-vectorize` and emit a common [`TopicModel`]: per-topic term
//! distributions plus per-document topic memberships.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coherence;
pub mod lda;
pub mod lsa;
pub mod model;
pub mod nmf;
pub mod plsi;

pub use model::{Topic, TopicModel};
pub use nmf::{Nmf, NmfConfig, WarmStart};
