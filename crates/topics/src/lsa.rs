//! Latent Semantic Analysis via truncated SVD.
//!
//! LSA (Deerwester et al. 1990) factorizes the weighted document-term
//! matrix `A ≈ U Σ Vᵀ`; topic-term loadings come from `Vᵀ` and
//! document memberships from `U Σ`. Included as a comparator for the
//! paper's §4.9 design-choice ablation. Because singular vectors are
//! sign-indeterminate and may be negative, each topic row is flipped
//! so its dominant mass is positive before keyword extraction.

use crate::model::TopicModel;
use nd_linalg::{truncated_svd_op, Mat};
use nd_vectorize::{CsrMatrix, Vocabulary};

/// LSA hyper-parameters.
#[derive(Debug, Clone)]
pub struct LsaConfig {
    /// Number of latent dimensions (topics).
    pub n_topics: usize,
    /// Power-iteration steps for the randomized SVD.
    pub n_iter: usize,
    /// Sketch seed.
    pub seed: u64,
}

impl Default for LsaConfig {
    fn default() -> Self {
        LsaConfig { n_topics: 10, n_iter: 5, seed: 42 }
    }
}

/// LSA solver.
#[derive(Debug, Clone)]
pub struct Lsa {
    config: LsaConfig,
}

impl Lsa {
    /// Creates a solver with the given configuration.
    pub fn new(config: LsaConfig) -> Self {
        Lsa { config }
    }

    /// Fits LSA to a weighted document-term matrix.
    pub fn fit(&self, a: &CsrMatrix, vocab: &Vocabulary) -> TopicModel {
        let k = self.config.n_topics.max(1).min(a.rows().max(1)).min(a.cols().max(1));
        if a.rows() == 0 || a.cols() == 0 {
            return TopicModel {
                doc_topic: Mat::zeros(a.rows(), 0),
                topic_term: Mat::zeros(0, a.cols()),
                vocab: vocab.clone(),
                objective: 0.0,
                iterations: 0,
            };
        }
        // Matrix-free: the randomized SVD's sketch and power iterations
        // run directly on the sparse matrix through its `MatOp` impl —
        // the document-term matrix is never densified, so fit cost is
        // sketch-sized GEMMs plus SpMM over the stored entries.
        let svd = truncated_svd_op(a, k, self.config.n_iter, self.config.seed)
            .expect("non-empty matrix");

        // doc_topic = U * Sigma, topic_term = V^T, sign-corrected.
        let kk = svd.s.len();
        let mut doc_topic = Mat::zeros(a.rows(), kk);
        let mut topic_term = Mat::zeros(kk, a.cols());
        for t in 0..kk {
            // Sign: make the largest-|value| term loading positive.
            let col = svd.v.col_view(t);
            let max_abs = col.iter().fold(0.0f64, |m, v| if v.abs() > m.abs() { v } else { m });
            let sign = if max_abs < 0.0 { -1.0 } else { 1.0 };
            for d in 0..a.rows() {
                doc_topic.set(d, t, sign * svd.u.get(d, t) * svd.s[t]);
            }
            for (j, v) in col.iter().enumerate() {
                topic_term.set(t, j, sign * v);
            }
        }

        // Objective: residual Frobenius error ||A||² - Σ σ².
        // nd-lint: allow(fp-reduction-order) — serial sum over singular values in order.
        let tail = (a.frobenius_norm_sq() - svd.s.iter().map(|s| s * s).sum::<f64>()).max(0.0);
        TopicModel {
            doc_topic,
            topic_term,
            vocab: vocab.clone(),
            objective: tail,
            iterations: self.config.n_iter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_vectorize::{DtmBuilder, Weighting};

    fn planted_corpus() -> Vec<Vec<String>> {
        let a = ["gaza", "israel", "hamas", "rocket"];
        let b = ["iran", "nuclear", "sanction", "tehran"];
        let mut docs = Vec::new();
        for i in 0..16 {
            let pool: &[&str] = if i % 2 == 0 { &a } else { &b };
            docs.push((0..10).map(|j| pool[(i + j) % pool.len()].to_string()).collect());
        }
        docs
    }

    #[test]
    fn shapes_and_nonempty_topics() {
        let dtm = DtmBuilder::new().build(&planted_corpus());
        let a = dtm.weighted(Weighting::TfIdfNormalized);
        let m = Lsa::new(LsaConfig { n_topics: 2, ..Default::default() }).fit(&a, dtm.vocab());
        assert_eq!(m.doc_topic.rows(), 16);
        assert_eq!(m.n_topics(), 2);
        let t = m.topic(0, 4).unwrap();
        assert_eq!(t.keywords.len(), 4);
    }

    #[test]
    fn second_component_separates_planted_groups() {
        let dtm = DtmBuilder::new().build(&planted_corpus());
        let a = dtm.weighted(Weighting::TfIdfNormalized);
        let m = Lsa::new(LsaConfig { n_topics: 2, ..Default::default() }).fit(&a, dtm.vocab());
        // The two vocabularies are disjoint, so the two leading
        // components align with the groups: assigning each document to
        // its largest-|loading| component must reproduce the grouping.
        let comp_of = |d: usize| {
            let c0 = m.doc_topic.get(d, 0).abs();
            let c1 = m.doc_topic.get(d, 1).abs();
            usize::from(c1 > c0)
        };
        let even = comp_of(0);
        let odd = comp_of(1);
        assert_ne!(even, odd);
        for d in 0..16 {
            let want = if d % 2 == 0 { even } else { odd };
            assert_eq!(comp_of(d), want, "doc {d}");
        }
    }

    #[test]
    fn objective_decreases_with_rank() {
        let dtm = DtmBuilder::new().build(&planted_corpus());
        let a = dtm.weighted(Weighting::TfIdfNormalized);
        let m1 = Lsa::new(LsaConfig { n_topics: 1, ..Default::default() }).fit(&a, dtm.vocab());
        let m4 = Lsa::new(LsaConfig { n_topics: 4, ..Default::default() }).fit(&a, dtm.vocab());
        assert!(m4.objective <= m1.objective + 1e-9);
    }

    #[test]
    fn sparse_fit_matches_dense_svd() {
        // The matrix-free path must agree with the dense SVD on the
        // same matrix: identical algorithm and seed, only the apply
        // kernels (SpMM vs packed GEMM) differ in rounding.
        let dtm = DtmBuilder::new().build(&planted_corpus());
        let a = dtm.weighted(Weighting::TfIdfNormalized);
        let sparse = nd_linalg::truncated_svd_op(&a, 2, 5, 42).unwrap();
        let dense = nd_linalg::truncated_svd(&a.to_dense(), 2, 5, 42).unwrap();
        for (s1, s2) in sparse.s.iter().zip(&dense.s) {
            assert!((s1 - s2).abs() < 1e-8, "sigma {s1} vs {s2}");
        }
        // Individual singular vectors are ill-conditioned when singular
        // values cluster (the two planted groups are near-symmetric),
        // so compare the rank-2 reconstructions, which are stable.
        let rebuild = |svd: &nd_linalg::Svd| {
            let mut us = svd.u.clone();
            for i in 0..us.rows() {
                for t in 0..svd.s.len() {
                    let v = us.get(i, t) * svd.s[t];
                    us.set(i, t, v);
                }
            }
            us.matmul(&svd.v.transpose()).unwrap()
        };
        let rs = rebuild(&sparse);
        let rd = rebuild(&dense);
        for (x, y) in rs.as_slice().iter().zip(rd.as_slice()) {
            assert!((x - y).abs() < 1e-8, "reconstruction differs: {x} vs {y}");
        }
    }

    #[test]
    fn empty_corpus_safe() {
        let dtm = DtmBuilder::new().build(&[]);
        let a = dtm.weighted(Weighting::Tf);
        let m = Lsa::new(LsaConfig::default()).fit(&a, dtm.vocab());
        assert_eq!(m.doc_topic.rows(), 0);
    }
}
