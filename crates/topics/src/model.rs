//! Common output type for all topic-model algorithms.

use nd_linalg::Mat;
use nd_vectorize::Vocabulary;

/// A single extracted topic: ranked keywords with weights.
#[derive(Debug, Clone)]
pub struct Topic {
    /// Topic index within the model.
    pub id: usize,
    /// Top keywords, descending by weight.
    pub keywords: Vec<String>,
    /// Weights parallel to `keywords`.
    pub weights: Vec<f64>,
}

impl Topic {
    /// Keywords joined by spaces — the representation the correlation
    /// module embeds with Doc2Vec (paper §4.5).
    pub fn keyword_string(&self) -> String {
        self.keywords.join(" ")
    }
}

/// The result of fitting any topic model: the factor matrices and the
/// vocabulary used to decode term indices.
#[derive(Debug, Clone)]
pub struct TopicModel {
    /// Document-topic memberships `W` (`n_docs x k`).
    pub doc_topic: Mat,
    /// Topic-term importances `H` (`k x n_terms`).
    pub topic_term: Mat,
    /// Vocabulary decoding term columns.
    pub vocab: Vocabulary,
    /// Final objective value (algorithm-specific: Frobenius error for
    /// NMF/LSA, negative log-likelihood for LDA/PLSI).
    pub objective: f64,
    /// Iterations actually performed.
    pub iterations: usize,
}

impl TopicModel {
    /// Number of topics.
    pub fn n_topics(&self) -> usize {
        self.topic_term.rows()
    }

    /// Extracts topic `t` with its `top_n` keywords.
    ///
    /// Returns `None` when `t` is out of range.
    pub fn topic(&self, t: usize, top_n: usize) -> Option<Topic> {
        if t >= self.n_topics() {
            return None;
        }
        let idx = self.topic_term.row_top_k(t, top_n);
        let keywords = idx
            .iter()
            .filter_map(|&j| self.vocab.term(j).map(str::to_string))
            .collect();
        let weights = idx.iter().map(|&j| self.topic_term.get(t, j)).collect();
        Some(Topic { id: t, keywords, weights })
    }

    /// All topics with `top_n` keywords each.
    pub fn topics(&self, top_n: usize) -> Vec<Topic> {
        (0..self.n_topics()).filter_map(|t| self.topic(t, top_n)).collect()
    }

    /// The dominant topic of document `d`, or `None` when the document
    /// has zero membership everywhere (e.g. it was fully pruned).
    pub fn dominant_topic(&self, d: usize) -> Option<usize> {
        let row = self.doc_topic.row(d);
        let best = nd_linalg::vecops::argmax(row)?;
        (row[best] > 0.0).then_some(best)
    }

    /// Documents assigned (dominantly) to topic `t`.
    pub fn documents_for_topic(&self, t: usize) -> Vec<usize> {
        (0..self.doc_topic.rows())
            .filter(|&d| self.dominant_topic(d) == Some(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> TopicModel {
        let mut vocab = Vocabulary::new();
        for t in ["brexit", "vote", "tariff", "trade"] {
            vocab.intern(t);
        }
        TopicModel {
            doc_topic: Mat::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.0, 0.0]).unwrap(),
            topic_term: Mat::from_vec(
                2,
                4,
                vec![
                    0.7, 0.3, 0.0, 0.0, // topic 0: brexit vote
                    0.0, 0.1, 0.6, 0.3, // topic 1: tariff trade
                ],
            )
            .unwrap(),
            vocab,
            objective: 0.0,
            iterations: 1,
        }
    }

    #[test]
    fn topic_keywords_ranked() {
        let m = tiny_model();
        let t0 = m.topic(0, 2).unwrap();
        assert_eq!(t0.keywords, vec!["brexit", "vote"]);
        assert!(t0.weights[0] >= t0.weights[1]);
        assert_eq!(t0.keyword_string(), "brexit vote");
        let t1 = m.topic(1, 2).unwrap();
        assert_eq!(t1.keywords, vec!["tariff", "trade"]);
    }

    #[test]
    fn topic_out_of_range() {
        assert!(tiny_model().topic(5, 3).is_none());
    }

    #[test]
    fn dominant_topic_assignment() {
        let m = tiny_model();
        assert_eq!(m.dominant_topic(0), Some(0));
        assert_eq!(m.dominant_topic(1), Some(1));
        assert_eq!(m.dominant_topic(2), None, "all-zero row has no dominant topic");
    }

    #[test]
    fn documents_for_topic() {
        let m = tiny_model();
        assert_eq!(m.documents_for_topic(0), vec![0]);
        assert_eq!(m.documents_for_topic(1), vec![1]);
    }

    #[test]
    fn topics_returns_all() {
        let m = tiny_model();
        assert_eq!(m.topics(3).len(), 2);
    }
}
