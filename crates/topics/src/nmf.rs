//! Non-Negative Matrix Factorization — the paper's topic-model choice.
//!
//! Factorizes the weighted document-term matrix `A (n x m)` into
//! non-negative `W (n x k)` (document-topic) and `H (k x m)`
//! (topic-term) by minimizing the Frobenius objective of paper
//! Eq. (6)–(7) with the Lee–Seung multiplicative updates of Eq. (8):
//!
//! ```text
//! H <- H .* (WᵀA) ./ (WᵀWH)
//! W <- W .* (AHᵀ) ./ (WHHᵀ)
//! ```
//!
//! The update keeps factors non-negative by construction and is
//! guaranteed not to increase the objective; we iterate until the
//! relative objective improvement drops below `tol` or `max_iter` is
//! reached.
//!
//! Every temporary the iteration needs lives in an [`NmfScratch`]
//! workspace allocated once per `fit`: the loop body runs through the
//! `*_into` product APIs and performs no heap allocation after the
//! first iteration (enforced by `nd-lint`'s `hot-loop-alloc` rule).

use crate::model::TopicModel;
use nd_linalg::Mat;
use nd_vectorize::{CsrMatrix, Vocabulary};

/// NMF hyper-parameters.
#[derive(Debug, Clone)]
pub struct NmfConfig {
    /// Number of topics `k`.
    pub n_topics: usize,
    /// Maximum multiplicative-update iterations.
    pub max_iter: usize,
    /// Relative-improvement stopping tolerance.
    pub tol: f64,
    /// RNG seed for factor initialization.
    pub seed: u64,
}

impl Default for NmfConfig {
    fn default() -> Self {
        NmfConfig { n_topics: 10, max_iter: 200, tol: 1e-4, seed: 42 }
    }
}

/// The NMF solver.
#[derive(Debug, Clone)]
pub struct Nmf {
    config: NmfConfig,
}

/// Previous factors to warm-start a fit from (DESIGN.md §17).
///
/// The streaming pipeline folds one time slice at a time: documents
/// and vocabulary only ever *grow*, and the incremental DTM keeps
/// term ids stable, so the previous `W` rows / `H` columns are a
/// valid prefix of the new factor shapes. Rows/columns beyond the
/// warm prefix (new documents, new terms) get the usual scaled-
/// uniform random initialization from the fit seed.
#[derive(Debug, Clone, Copy)]
pub struct WarmStart<'a> {
    /// Previous document-topic factor (`n₀ × k`).
    pub doc_topic: &'a Mat,
    /// Previous topic-term factor (`k × m₀`).
    pub topic_term: &'a Mat,
}

/// Small constant guarding the multiplicative-update denominators.
const EPS: f64 = 1e-10;

/// Preallocated per-`fit` workspace: every matrix temporary the
/// multiplicative-update loop needs, allocated on the first iteration
/// and reshaped in place (`Mat::reset_zeroed`) on every subsequent
/// one. Shapes are fixed across the loop (`W: n×k`, `H: k×m`), so
/// after iteration one nothing here ever reallocates.
struct NmfScratch {
    /// `WᵀA` (k×m) — numerator of the H update, written directly in
    /// its consumed layout by the fused
    /// `CsrMatrix::transpose_matmul_dense_t_into` kernel (no `AᵀW`
    /// intermediate, no transpose pass).
    wta: Mat,
    /// `WᵀW` (k×k).
    wtw: Mat,
    /// `WᵀWH` (k×m) — denominator of the H update.
    wtwh: Mat,
    /// `Hᵀ` (m×k); needed by the sparse `AHᵀ` product.
    ht: Mat,
    /// `AHᵀ` (n×k) — numerator of the W update.
    aht: Mat,
    /// `HHᵀ` (k×k) via `matmul_transpose_into` straight off `H`.
    hht: Mat,
    /// `WHHᵀ` (n×k) — denominator of the W update.
    whht: Mat,
    /// Packing panels shared by every dense GEMM in the loop.
    gemm: nd_linalg::GemmScratch,
}

impl NmfScratch {
    fn new() -> Self {
        let empty = || Mat::zeros(0, 0);
        NmfScratch {
            wta: empty(),
            wtw: empty(),
            wtwh: empty(),
            ht: empty(),
            aht: empty(),
            hht: empty(),
            whht: empty(),
            gemm: nd_linalg::GemmScratch::new(),
        }
    }
}

impl Nmf {
    /// Creates a solver with the given configuration.
    pub fn new(config: NmfConfig) -> Self {
        Nmf { config }
    }

    /// Convenience constructor for `k` topics with defaults.
    pub fn with_topics(n_topics: usize) -> Self {
        Nmf::new(NmfConfig { n_topics, ..NmfConfig::default() })
    }

    /// Fits the factorization to a weighted document-term matrix.
    ///
    /// `vocab` must be the vocabulary that produced `a`'s columns; it
    /// is cloned into the returned [`TopicModel`] for keyword decoding.
    pub fn fit(&self, a: &CsrMatrix, vocab: &Vocabulary) -> TopicModel {
        self.fit_warm(a, vocab, None)
    }

    /// Fits the factorization, optionally warm-starting from previous
    /// factors.
    ///
    /// When `warm` is given and its topic count matches the clamped
    /// `k`, the previous `W` rows and `H` columns seed the
    /// corresponding prefix of the new factors (floored at `EPS` so
    /// multiplicative updates cannot lock a copied zero); fresh rows
    /// and columns draw from the configured seed exactly as a cold
    /// fit would. A shape-incompatible warm start falls back to the
    /// cold initialization. With `warm = None` this IS the cold path:
    /// `fit` delegates here, bit for bit.
    pub fn fit_warm(
        &self,
        a: &CsrMatrix,
        vocab: &Vocabulary,
        warm: Option<WarmStart<'_>>,
    ) -> TopicModel {
        let (n, m) = (a.rows(), a.cols());
        let k = self.config.n_topics.max(1).min(n.max(1)).min(m.max(1));

        // Scaled uniform initialization: E[WH] matches E[A].
        let mean = if n * m > 0 {
            (a.frobenius_norm_sq() / (n * m) as f64).sqrt()
        } else {
            0.0
        };
        let scale = (mean / k as f64).sqrt().max(1e-3);
        let mut w = Mat::random_uniform(n, k, 0.1 * scale, scale, self.config.seed);
        let mut h = Mat::random_uniform(k, m, 0.1 * scale, scale, self.config.seed ^ 0xDEAD);
        if let Some(ws) = warm {
            if ws.doc_topic.cols() == k && ws.topic_term.rows() == k {
                let n0 = ws.doc_topic.rows().min(n);
                for i in 0..n0 {
                    for j in 0..k {
                        w.set(i, j, ws.doc_topic.get(i, j).max(EPS));
                    }
                }
                let m0 = ws.topic_term.cols().min(m);
                for t in 0..k {
                    for j in 0..m0 {
                        h.set(t, j, ws.topic_term.get(t, j).max(EPS));
                    }
                }
            }
        }

        let a_fro2 = a.frobenius_norm_sq();
        let mut prev_obj = f64::INFINITY;
        let mut iterations = 0;
        let mut s = NmfScratch::new();
        let mut objective = objective_value(a, &w, &h, a_fro2, &mut s);

        // Factor shapes are invariant across the whole loop (W is
        // n×k, H is k×m), so validate them once here and use the
        // unchecked product paths below — the iteration body stays
        // branch-free instead of unwrapping a `Result` per product.
        assert_eq!(w.shape(), (n, k), "W must be docs x topics");
        assert_eq!(h.shape(), (k, m), "H must be topics x terms");

        for it in 0..self.config.max_iter {
            iterations = it + 1;

            // H <- H .* (W^T A) ./ (W^T W H)
            a.transpose_matmul_dense_t_into(&w, &mut s.wta); // fused (AᵀW)ᵀ, k x m
            w.gram_into(&mut s.gemm, &mut s.wtw); // k x k
            s.wtw.matmul_unchecked_into(&h, &mut s.gemm, &mut s.wtwh);
            update_factor(&mut h, &s.wta, &s.wtwh);

            // W <- W .* (A H^T) ./ (W H H^T)
            h.transpose_into(&mut s.ht); // m x k, for the sparse product
            a.matmul_dense_into(&s.ht, &mut s.aht); // n x k
            h.matmul_transpose_into(&h, &mut s.gemm, &mut s.hht); // H Hᵀ, k x k
            w.matmul_unchecked_into(&s.hht, &mut s.gemm, &mut s.whht);
            update_factor(&mut w, &s.aht, &s.whht);

            objective = objective_value(a, &w, &h, a_fro2, &mut s);
            if prev_obj.is_finite() {
                let rel = (prev_obj - objective).abs() / prev_obj.max(EPS);
                if rel < self.config.tol {
                    break;
                }
            }
            prev_obj = objective;
        }

        TopicModel {
            doc_topic: w,
            topic_term: h,
            vocab: vocab.clone(),
            objective,
            iterations,
        }
    }
}

/// `x <- x .* num ./ den`, with epsilon-guarded division and a
/// non-negativity clamp against rounding. Element-wise and therefore
/// trivially row-parallel.
fn update_factor(x: &mut Mat, num: &Mat, den: &Mat) {
    debug_assert_eq!(x.shape(), num.shape());
    debug_assert_eq!(x.shape(), den.shape());
    let cols = x.cols().max(1);
    let rows = x.rows();
    let ns = num.as_slice();
    let ds = den.as_slice();
    let rows_per_chunk = nd_par::auto_chunk_len(rows, 64);
    nd_par::par_for_rows(x.as_mut_slice(), cols, rows_per_chunk, cols, |r0, block| {
        let off = r0 * cols;
        for (i, xv) in block.iter_mut().enumerate() {
            *xv *= ns[off + i] / (ds[off + i] + EPS);
            if *xv < 0.0 {
                *xv = 0.0;
            }
        }
    });
}

/// `||A - WH||_F^2` computed without densifying `A`:
/// `||A||² - 2·<A, WH> + ||WH||²`, with `<A, WH>` accumulated over the
/// sparse entries and `||WH||² = tr((WᵀW)(HHᵀ))`. The small `k×k`
/// products land in the shared scratch workspace.
fn objective_value(a: &CsrMatrix, w: &Mat, h: &Mat, a_fro2: f64, s: &mut NmfScratch) -> f64 {
    // <A, WH>: document chunks run in parallel, partial sums combine
    // in chunk order so the value is reproducible at any thread count.
    let k = w.cols();
    let avg_nnz = a.nnz() / a.rows().max(1);
    // Fixed chunk length: reduction order must not move with the
    // thread count.
    let cross = nd_par::par_map_reduce(
        a.rows(),
        64,
        avg_nnz.saturating_mul(k).max(1),
        |range| {
            let mut c = 0.0;
            for i in range {
                let wrow = w.row(i);
                for (j, v) in a.row(i).iter() {
                    // Strided column view of H: no per-entry allocation.
                    let wh: f64 =
                        // nd-lint: allow(fp-reduction-order) — serial zip over one row; order fixed.
                        wrow.iter().zip(h.col_view(j).iter()).map(|(&wv, hv)| wv * hv).sum();
                    c += v * wh;
                }
            }
            c
        },
        |x, y| x + y,
    )
    .unwrap_or(0.0);
    // ||WH||^2 = tr((W^T W)(H H^T))
    w.gram_into(&mut s.gemm, &mut s.wtw);
    h.matmul_transpose_into(h, &mut s.gemm, &mut s.hht);
    let mut wh_fro2 = 0.0;
    for i in 0..s.wtw.rows() {
        for j in 0..s.wtw.cols() {
            wh_fro2 += s.wtw.get(i, j) * s.hht.get(j, i);
        }
    }
    (a_fro2 - 2.0 * cross + wh_fro2).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_vectorize::{DtmBuilder, Weighting};

    fn planted_corpus() -> Vec<Vec<String>> {
        // Two clearly separated topics: politics and trade.
        let politics = ["brexit", "vote", "election", "party", "parliament"];
        let trade = ["tariff", "trade", "china", "import", "export"];
        let mut docs = Vec::new();
        for i in 0..20 {
            let pool: &[&str] = if i % 2 == 0 { &politics } else { &trade };
            let doc: Vec<String> = (0..12).map(|j| pool[(i + j) % pool.len()].to_string()).collect();
            docs.push(doc);
        }
        docs
    }

    fn fit_planted(seed: u64) -> TopicModel {
        let dtm = DtmBuilder::new().build(&planted_corpus());
        let a = dtm.weighted(Weighting::TfIdfNormalized);
        Nmf::new(NmfConfig { n_topics: 2, max_iter: 300, tol: 1e-7, seed })
            .fit(&a, dtm.vocab())
    }

    #[test]
    fn factors_nonnegative() {
        let m = fit_planted(1);
        assert!(m.doc_topic.as_slice().iter().all(|&v| v >= 0.0));
        assert!(m.topic_term.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn recovers_planted_topics() {
        let m = fit_planted(7);
        let t0 = m.topic(0, 5).unwrap();
        let t1 = m.topic(1, 5).unwrap();
        let joint0 = t0.keywords.join(" ");
        let joint1 = t1.keywords.join(" ");
        // One topic should be politics-flavoured, the other trade-flavoured.
        let politics_hits = |s: &str| {
            ["brexit", "vote", "election", "party", "parliament"]
                .iter()
                .filter(|k| s.contains(*k))
                .count()
        };
        let trade_hits = |s: &str| {
            ["tariff", "trade", "china", "import", "export"]
                .iter()
                .filter(|k| s.contains(*k))
                .count()
        };
        let sep = (politics_hits(&joint0) >= 4 && trade_hits(&joint1) >= 4)
            || (politics_hits(&joint1) >= 4 && trade_hits(&joint0) >= 4);
        assert!(sep, "topics not separated:\n  t0: {joint0}\n  t1: {joint1}");
    }

    #[test]
    fn documents_assigned_to_correct_topics() {
        let m = fit_planted(3);
        // Even documents are politics, odd are trade; they should split
        // into two pure groups by dominant topic.
        let even_topic = m.dominant_topic(0).unwrap();
        let odd_topic = m.dominant_topic(1).unwrap();
        assert_ne!(even_topic, odd_topic);
        for d in 0..20 {
            let want = if d % 2 == 0 { even_topic } else { odd_topic };
            assert_eq!(m.dominant_topic(d), Some(want), "doc {d}");
        }
    }

    #[test]
    fn objective_decreases_with_more_iterations() {
        let dtm = DtmBuilder::new().build(&planted_corpus());
        let a = dtm.weighted(Weighting::TfIdfNormalized);
        let short = Nmf::new(NmfConfig { n_topics: 2, max_iter: 2, tol: 0.0, seed: 5 })
            .fit(&a, dtm.vocab());
        let long = Nmf::new(NmfConfig { n_topics: 2, max_iter: 100, tol: 0.0, seed: 5 })
            .fit(&a, dtm.vocab());
        assert!(
            long.objective <= short.objective + 1e-9,
            "long {} vs short {}",
            long.objective,
            short.objective
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let a = fit_planted(11);
        let b = fit_planted(11);
        assert_eq!(a.doc_topic, b.doc_topic);
        assert_eq!(a.topic_term, b.topic_term);
    }

    #[test]
    fn k_clamped_to_matrix_dims() {
        let docs: Vec<Vec<String>> =
            vec![vec!["a".to_string(), "b".to_string()], vec!["b".to_string()]];
        let dtm = DtmBuilder::new().build(&docs);
        let a = dtm.weighted(Weighting::Tf);
        let m = Nmf::with_topics(50).fit(&a, dtm.vocab());
        assert!(m.n_topics() <= 2);
    }

    #[test]
    fn empty_matrix_does_not_panic() {
        let dtm = DtmBuilder::new().build(&[]);
        let a = dtm.weighted(Weighting::Tf);
        let m = Nmf::with_topics(3).fit(&a, dtm.vocab());
        assert_eq!(m.doc_topic.rows(), 0);
    }

    #[test]
    fn fit_warm_none_is_bitwise_the_cold_path() {
        let dtm = DtmBuilder::new().build(&planted_corpus());
        let a = dtm.weighted(Weighting::TfIdfNormalized);
        let solver = Nmf::new(NmfConfig { n_topics: 2, max_iter: 40, tol: 1e-7, seed: 9 });
        let cold = solver.fit(&a, dtm.vocab());
        let warm_none = solver.fit_warm(&a, dtm.vocab(), None);
        assert_eq!(cold.doc_topic, warm_none.doc_topic);
        assert_eq!(cold.topic_term, warm_none.topic_term);
    }

    #[test]
    fn warm_start_refines_from_previous_factors() {
        let dtm = DtmBuilder::new().build(&planted_corpus());
        let a = dtm.weighted(Weighting::TfIdfNormalized);
        let converged = Nmf::new(NmfConfig { n_topics: 2, max_iter: 300, tol: 1e-9, seed: 4 })
            .fit(&a, dtm.vocab());
        // A handful of warm iterations from the converged factors must
        // land (essentially) back at the converged objective; the same
        // budget from a cold start generally cannot.
        let refine = Nmf::new(NmfConfig { n_topics: 2, max_iter: 3, tol: 0.0, seed: 4 });
        let warm = refine.fit_warm(
            &a,
            dtm.vocab(),
            Some(WarmStart { doc_topic: &converged.doc_topic, topic_term: &converged.topic_term }),
        );
        assert!(
            warm.objective <= converged.objective * 1.001 + 1e-12,
            "warm refinement regressed: {} vs {}",
            warm.objective,
            converged.objective
        );
        assert!(warm.doc_topic.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn warm_start_handles_grown_corpus_and_vocab() {
        // Fit on a prefix, then warm-start on the grown matrix: prior
        // rows/cols seed the prefix, new ones draw fresh.
        let all = planted_corpus();
        let dtm_small = DtmBuilder::new().min_df(1).build(&all[..10]);
        let a_small = dtm_small.weighted(Weighting::TfIdfNormalized);
        let prev = Nmf::new(NmfConfig { n_topics: 2, max_iter: 200, tol: 1e-9, seed: 8 })
            .fit(&a_small, dtm_small.vocab());
        let dtm_full = DtmBuilder::new().min_df(1).build(&all);
        let a_full = dtm_full.weighted(Weighting::TfIdfNormalized);
        let solver = Nmf::new(NmfConfig { n_topics: 2, max_iter: 25, tol: 0.0, seed: 8 });
        let warm = solver.fit_warm(
            &a_full,
            dtm_full.vocab(),
            Some(WarmStart { doc_topic: &prev.doc_topic, topic_term: &prev.topic_term }),
        );
        assert_eq!(warm.doc_topic.rows(), a_full.rows());
        assert_eq!(warm.topic_term.cols(), a_full.cols());
        assert!(warm.objective.is_finite());
        // Determinism: the same warm start reproduces bit-identically.
        let again = solver.fit_warm(
            &a_full,
            dtm_full.vocab(),
            Some(WarmStart { doc_topic: &prev.doc_topic, topic_term: &prev.topic_term }),
        );
        assert_eq!(warm.doc_topic, again.doc_topic);
        assert_eq!(warm.topic_term, again.topic_term);
    }

    #[test]
    fn shape_mismatched_warm_start_falls_back_cold() {
        let dtm = DtmBuilder::new().build(&planted_corpus());
        let a = dtm.weighted(Weighting::TfIdfNormalized);
        let solver = Nmf::new(NmfConfig { n_topics: 2, max_iter: 20, tol: 1e-7, seed: 6 });
        let cold = solver.fit(&a, dtm.vocab());
        let bad_w = Mat::zeros(5, 7); // wrong k
        let bad_h = Mat::zeros(7, 3);
        let fallback = solver.fit_warm(
            &a,
            dtm.vocab(),
            Some(WarmStart { doc_topic: &bad_w, topic_term: &bad_h }),
        );
        assert_eq!(cold.doc_topic, fallback.doc_topic);
        assert_eq!(cold.topic_term, fallback.topic_term);
    }

    #[test]
    fn reconstruction_error_small_for_separable_data() {
        let dtm = DtmBuilder::new().build(&planted_corpus());
        let a = dtm.weighted(Weighting::TfIdfNormalized);
        let m = Nmf::new(NmfConfig { n_topics: 2, max_iter: 500, tol: 1e-9, seed: 2 })
            .fit(&a, dtm.vocab());
        let rel = m.objective / a.frobenius_norm_sq();
        assert!(rel < 0.15, "relative reconstruction error {rel}");
    }
}
