//! Probabilistic Latent Semantic Indexing by EM.
//!
//! PLSI (Hofmann 2000) models `p(d, w) = Σ_t p(t) p(d|t) p(w|t)`. We
//! use the equivalent conditional parameterization
//! `p(w|d) = Σ_t p(t|d) p(w|t)` and fit by expectation-maximization on
//! the count matrix. Included as the statistical-model comparator in
//! the §4.9 design-choice ablation.

use crate::model::TopicModel;
use nd_linalg::rng::SplitMix64;
use nd_linalg::Mat;
use nd_vectorize::{CsrMatrix, Vocabulary};

/// PLSI hyper-parameters.
#[derive(Debug, Clone)]
pub struct PlsiConfig {
    /// Number of topics.
    pub n_topics: usize,
    /// EM iterations.
    pub n_iter: usize,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for PlsiConfig {
    fn default() -> Self {
        PlsiConfig { n_topics: 10, n_iter: 50, seed: 42 }
    }
}

/// PLSI solver.
#[derive(Debug, Clone)]
pub struct Plsi {
    config: PlsiConfig,
}

impl Plsi {
    /// Creates a solver with the given configuration.
    pub fn new(config: PlsiConfig) -> Self {
        Plsi { config }
    }

    /// Fits PLSI to a count matrix by EM.
    #[allow(clippy::needless_range_loop)] // parallel accumulator arrays
    pub fn fit(&self, counts: &CsrMatrix, vocab: &Vocabulary) -> TopicModel {
        let n_docs = counts.rows();
        let n_terms = counts.cols();
        let k = self.config.n_topics.max(1);

        let mut rng = SplitMix64::new(self.config.seed);
        // p(t|d): n_docs x k, p(w|t): k x n_terms, randomly initialized
        // and normalized.
        let mut p_t_d = Mat::from_fn(n_docs, k, |_, _| 0.5 + rng.next_f64());
        let mut p_w_t = Mat::from_fn(k, n_terms, |_, _| 0.5 + rng.next_f64());
        normalize_rows_l1(&mut p_t_d);
        normalize_rows_l1(&mut p_w_t);

        let mut nll = f64::INFINITY;
        // Fixed document chunk for the likelihood reduction: the
        // combination order must not move with the thread count.
        const DOC_CHUNK: usize = 32;
        let avg_nnz = counts.nnz() / n_docs.max(1);
        for _ in 0..self.config.n_iter {
            // E step + the p(t|d) half of the M step, document-parallel.
            // Each chunk owns its documents' new p(t|d) rows outright
            // and contributes a partial log-likelihood; chunks merge
            // in ascending order (concatenation + summation).
            let (ptd_rows, nll_total) = nd_par::par_map_reduce(
                n_docs,
                DOC_CHUNK,
                avg_nnz.saturating_mul(k).max(1),
                |range| {
                    let mut rows = vec![0.0; range.len() * k];
                    let mut post = vec![0.0; k];
                    let mut nll_part = 0.0;
                    for (di, d) in range.enumerate() {
                        let ptd_row = p_t_d.row(d);
                        let out = &mut rows[di * k..(di + 1) * k];
                        for (w, c) in counts.row(d).iter() {
                            // Posterior p(t | d, w).
                            let mut total = 0.0;
                            for t in 0..k {
                                post[t] = ptd_row[t] * p_w_t.get(t, w);
                                total += post[t];
                            }
                            if total <= 0.0 {
                                continue;
                            }
                            nll_part -= c * total.max(1e-300).ln();
                            for t in 0..k {
                                out[t] += c * post[t] / total;
                            }
                        }
                    }
                    (rows, nll_part)
                },
                |(mut ra, na), (rb, nb)| {
                    ra.extend_from_slice(&rb);
                    (ra, na + nb)
                },
            )
            .unwrap_or((Vec::new(), 0.0));
            nll = nll_total;
            let mut new_ptd =
                Mat::from_vec(n_docs, k, ptd_rows).expect("chunks cover every document row");

            // The p(w|t) half of the M step, term-sharded: workers
            // accumulate into a term-major (n_terms × k) buffer, each
            // owning a disjoint term range and re-deriving the same
            // posteriors. Contributions per (w, t) arrive in ascending
            // document order whatever the shard layout, so the result
            // is bit-for-bit reproducible.
            let mut pwt_t = Mat::zeros(n_terms, k);
            let shard_rows = n_terms.div_ceil(nd_par::threads()).max(1);
            let p_t_d_ref = &p_t_d;
            let p_w_t_ref = &p_w_t;
            nd_par::par_for_rows(
                pwt_t.as_mut_slice(),
                k,
                shard_rows,
                avg_nnz.saturating_mul(k).max(1),
                |w0, block| {
                    let w_end = w0 + block.len() / k;
                    let mut post = vec![0.0; k];
                    for d in 0..n_docs {
                        let row = counts.row(d);
                        let idx = row.indices();
                        let lo = idx.partition_point(|&c| c < w0);
                        let hi = idx.partition_point(|&c| c < w_end);
                        if lo == hi {
                            continue;
                        }
                        let ptd_row = p_t_d_ref.row(d);
                        for p in lo..hi {
                            let w = idx[p];
                            let c = row.values()[p];
                            let mut total = 0.0;
                            for t in 0..k {
                                post[t] = ptd_row[t] * p_w_t_ref.get(t, w);
                                total += post[t];
                            }
                            if total <= 0.0 {
                                continue;
                            }
                            let local = w - w0;
                            let out = &mut block[local * k..(local + 1) * k];
                            for t in 0..k {
                                out[t] += c * post[t] / total;
                            }
                        }
                    }
                },
            );
            let mut new_pwt = pwt_t.transpose();

            normalize_rows_l1(&mut new_ptd);
            normalize_rows_l1(&mut new_pwt);
            p_t_d = new_ptd;
            p_w_t = new_pwt;
        }

        TopicModel {
            doc_topic: p_t_d,
            topic_term: p_w_t,
            vocab: vocab.clone(),
            objective: nll,
            iterations: self.config.n_iter,
        }
    }
}

fn normalize_rows_l1(m: &mut Mat) {
    for i in 0..m.rows() {
        let row = m.row_mut(i);
        // nd-lint: allow(fp-reduction-order) — serial sum over one row in storage order.
        let s: f64 = row.iter().sum();
        if s > 0.0 {
            for v in row {
                *v /= s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_vectorize::DtmBuilder;

    fn planted_corpus() -> Vec<Vec<String>> {
        let a = ["impeachment", "pelosi", "congress", "inquiry"];
        let b = ["japan", "abe", "tokyo", "emperor"];
        let mut docs = Vec::new();
        for i in 0..20 {
            let pool: &[&str] = if i % 2 == 0 { &a } else { &b };
            docs.push((0..12).map(|j| pool[(i + j) % pool.len()].to_string()).collect());
        }
        docs
    }

    #[test]
    fn distributions_proper() {
        let dtm = DtmBuilder::new().build(&planted_corpus());
        let m = Plsi::new(PlsiConfig { n_topics: 2, n_iter: 30, ..Default::default() })
            .fit(dtm.counts(), dtm.vocab());
        for d in 0..m.doc_topic.rows() {
            let s: f64 = m.doc_topic.row(d).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        for t in 0..m.n_topics() {
            let s: f64 = m.topic_term.row(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn separates_planted_topics() {
        let dtm = DtmBuilder::new().build(&planted_corpus());
        let m = Plsi::new(PlsiConfig { n_topics: 2, n_iter: 60, seed: 4 })
            .fit(dtm.counts(), dtm.vocab());
        let even = m.dominant_topic(0).unwrap();
        let odd = m.dominant_topic(1).unwrap();
        assert_ne!(even, odd);
        for d in 0..20 {
            let want = if d % 2 == 0 { even } else { odd };
            assert_eq!(m.dominant_topic(d), Some(want), "doc {d}");
        }
    }

    #[test]
    fn likelihood_improves_with_iterations() {
        let dtm = DtmBuilder::new().build(&planted_corpus());
        let short = Plsi::new(PlsiConfig { n_topics: 2, n_iter: 2, seed: 8 })
            .fit(dtm.counts(), dtm.vocab());
        let long = Plsi::new(PlsiConfig { n_topics: 2, n_iter: 40, seed: 8 })
            .fit(dtm.counts(), dtm.vocab());
        assert!(long.objective <= short.objective + 1e-6);
    }

    #[test]
    fn empty_corpus_safe() {
        let dtm = DtmBuilder::new().build(&[]);
        let m = Plsi::new(PlsiConfig::default()).fit(dtm.counts(), dtm.vocab());
        assert_eq!(m.doc_topic.rows(), 0);
    }
}
