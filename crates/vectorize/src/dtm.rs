//! Document-term matrix construction.
//!
//! [`DtmBuilder`] turns preprocessed token streams into a sparse
//! count matrix plus vocabulary; [`DocumentTermMatrix::weighted`]
//! applies any [`Weighting`] scheme to produce the matrix `A` the
//! topic models factorize.

use crate::sparse::CsrMatrix;
use crate::vocab::Vocabulary;
use crate::weighting::{idf_vector, tf_transform, uses_idf, uses_l2_norm, Weighting};
use std::collections::HashMap;

/// Builder with frequency-based vocabulary pruning.
#[derive(Debug, Clone)]
pub struct DtmBuilder {
    min_df: usize,
    max_df_ratio: f64,
    max_vocab: Option<usize>,
}

impl Default for DtmBuilder {
    fn default() -> Self {
        DtmBuilder { min_df: 1, max_df_ratio: 1.0, max_vocab: None }
    }
}

impl DtmBuilder {
    /// Builder with no pruning.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops terms appearing in fewer than `min_df` documents.
    pub fn min_df(mut self, min_df: usize) -> Self {
        self.min_df = min_df.max(1);
        self
    }

    /// Drops terms appearing in more than `ratio * n_docs` documents
    /// (`ratio` clamped to `(0, 1]`). Near-ubiquitous terms carry no
    /// topical signal and bloat the factorization.
    pub fn max_df_ratio(mut self, ratio: f64) -> Self {
        self.max_df_ratio = ratio.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Keeps only the `k` most frequent surviving terms.
    pub fn max_vocab(mut self, k: usize) -> Self {
        self.max_vocab = Some(k);
        self
    }

    /// Builds the count matrix from token streams (one `Vec<String>`
    /// per document). Documents whose every term was pruned become
    /// empty rows — row alignment with the input corpus is preserved.
    pub fn build(&self, docs: &[Vec<String>]) -> DocumentTermMatrix {
        // Pass 1: document frequency + collection frequency.
        let mut df: HashMap<&str, usize> = HashMap::new();
        let mut cf: HashMap<&str, u64> = HashMap::new();
        for doc in docs {
            let mut seen: HashMap<&str, ()> = HashMap::new();
            for t in doc {
                *cf.entry(t.as_str()).or_insert(0) += 1;
                seen.entry(t.as_str()).or_insert(());
            }
            for t in seen.keys() {
                *df.entry(t).or_insert(0) += 1;
            }
        }

        let max_df = (self.max_df_ratio * docs.len() as f64).ceil() as usize;
        let mut kept: Vec<&str> = df
            .iter()
            .filter(|(_, &d)| d >= self.min_df && d <= max_df)
            .map(|(&t, _)| t)
            .collect();
        // Deterministic order: by collection frequency desc, then term.
        kept.sort_by(|a, b| cf[b].cmp(&cf[a]).then_with(|| a.cmp(b)));
        if let Some(k) = self.max_vocab {
            kept.truncate(k);
        }

        let mut vocab = Vocabulary::new();
        for t in &kept {
            vocab.intern(t);
        }

        // Pass 2: counts.
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(docs.len());
        for doc in docs {
            let mut counts: HashMap<usize, f64> = HashMap::new();
            for t in doc {
                if let Some(id) = vocab.get(t) {
                    *counts.entry(id).or_insert(0.0) += 1.0;
                }
            }
            rows.push(counts.into_iter().collect());
        }
        let counts = CsrMatrix::from_rows(vocab.len(), &rows);
        DocumentTermMatrix { vocab, counts }
    }
}

/// A corpus as a sparse count matrix plus its vocabulary.
#[derive(Debug, Clone)]
pub struct DocumentTermMatrix {
    vocab: Vocabulary,
    counts: CsrMatrix,
}

impl DocumentTermMatrix {
    /// The vocabulary (column space).
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The raw count matrix (documents × terms).
    pub fn counts(&self) -> &CsrMatrix {
        &self.counts
    }

    /// Number of documents.
    pub fn n_docs(&self) -> usize {
        self.counts.rows()
    }

    /// Vocabulary size.
    pub fn n_terms(&self) -> usize {
        self.counts.cols()
    }

    /// Applies a weighting scheme, producing the matrix `A` of the
    /// paper's §3.1.
    pub fn weighted(&self, scheme: Weighting) -> CsrMatrix {
        let mut m = self.counts.map_entries(|_, _, v| tf_transform(scheme, v));
        if uses_idf(scheme) {
            let idf = idf_vector(self.n_docs(), &self.counts.column_document_frequency());
            m = m.map_entries(|_, j, v| v * idf[j]);
        }
        if uses_l2_norm(scheme) {
            m = m.normalize_rows_l2();
        }
        m
    }

    /// TF-IDF value of a single `(doc, term)` pair (Eq. 3); `None` for
    /// an unknown term.
    pub fn tfidf(&self, doc: usize, term: &str) -> Option<f64> {
        let j = self.vocab.get(term)?;
        let tf = self.counts.get(doc, j);
        let df = self.counts.column_document_frequency()[j];
        Some(tf * crate::weighting::idf(self.n_docs(), df))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<String>> {
        let to_vec = |s: &str| s.split_whitespace().map(str::to_string).collect();
        vec![
            to_vec("brexit vote brexit party"),
            to_vec("tariff trade china tariff"),
            to_vec("vote election party"),
            to_vec("brexit election"),
        ]
    }

    #[test]
    fn counts_correct() {
        let dtm = DtmBuilder::new().build(&docs());
        assert_eq!(dtm.n_docs(), 4);
        let j = dtm.vocab().get("brexit").unwrap();
        assert_eq!(dtm.counts().get(0, j), 2.0);
        assert_eq!(dtm.counts().get(1, j), 0.0);
        assert_eq!(dtm.counts().get(3, j), 1.0);
    }

    #[test]
    fn tfidf_matches_hand_computation() {
        let dtm = DtmBuilder::new().build(&docs());
        // "brexit": tf=2 in doc 0, df=2 of 4 docs -> idf = log2(2) = 1.
        let v = dtm.tfidf(0, "brexit").unwrap();
        assert!((v - 2.0).abs() < 1e-12);
        // "tariff": tf=2 in doc 1, df=1 -> idf = log2(4) = 2 -> 4.
        let v = dtm.tfidf(1, "tariff").unwrap();
        assert!((v - 4.0).abs() < 1e-12);
        assert_eq!(dtm.tfidf(0, "nonexistent"), None);
    }

    #[test]
    fn normalized_rows_unit_norm() {
        let dtm = DtmBuilder::new().build(&docs());
        let a = dtm.weighted(Weighting::TfIdfNormalized);
        for i in 0..a.rows() {
            let n = a.row(i).norm2();
            assert!(n == 0.0 || (n - 1.0).abs() < 1e-9, "row {i} norm {n}");
        }
    }

    #[test]
    fn weighted_values_nonnegative() {
        let dtm = DtmBuilder::new().build(&docs());
        for scheme in Weighting::ALL {
            let a = dtm.weighted(scheme);
            for i in 0..a.rows() {
                assert!(a.row(i).values().iter().all(|&v| v >= 0.0), "{scheme:?}");
            }
        }
    }

    #[test]
    fn min_df_prunes_rare_terms() {
        let dtm = DtmBuilder::new().min_df(2).build(&docs());
        assert!(dtm.vocab().get("brexit").is_some()); // df = 2
        assert!(dtm.vocab().get("tariff").is_none()); // df = 1
        assert!(dtm.vocab().get("china").is_none());
    }

    #[test]
    fn max_df_prunes_ubiquitous_terms() {
        let mut d = docs();
        for doc in &mut d {
            doc.push("common".to_string());
        }
        let dtm = DtmBuilder::new().max_df_ratio(0.75).build(&d);
        assert!(dtm.vocab().get("common").is_none());
        assert!(dtm.vocab().get("brexit").is_some());
    }

    #[test]
    fn max_vocab_keeps_most_frequent() {
        let dtm = DtmBuilder::new().max_vocab(2).build(&docs());
        assert_eq!(dtm.n_terms(), 2);
        // brexit appears 3 times total — must survive.
        assert!(dtm.vocab().get("brexit").is_some());
    }

    #[test]
    fn row_alignment_preserved_when_doc_fully_pruned() {
        let d = vec![
            vec!["unique".to_string()],
            vec!["shared".to_string()],
            vec!["shared".to_string()],
        ];
        let dtm = DtmBuilder::new().min_df(2).build(&d);
        assert_eq!(dtm.n_docs(), 3);
        assert_eq!(dtm.counts().row(0).nnz(), 0);
        assert_eq!(dtm.counts().row(1).nnz(), 1);
    }

    #[test]
    fn empty_corpus() {
        let dtm = DtmBuilder::new().build(&[]);
        assert_eq!(dtm.n_docs(), 0);
        assert_eq!(dtm.n_terms(), 0);
    }

    #[test]
    fn deterministic_vocab_order() {
        let a = DtmBuilder::new().build(&docs());
        let b = DtmBuilder::new().build(&docs());
        let ta: Vec<_> = a.vocab().iter().map(|(_, t)| t.to_string()).collect();
        let tb: Vec<_> = b.vocab().iter().map(|(_, t)| t.to_string()).collect();
        assert_eq!(ta, tb);
    }
}
