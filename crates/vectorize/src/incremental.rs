//! Incremental document-term matrix: append docs, fold DF counts,
//! recompute weights only for touched terms.
//!
//! [`DtmBuilder`](crate::DtmBuilder) is a batch construct: it makes
//! two passes over the whole corpus and orders the vocabulary by
//! global collection frequency, so adding one document invalidates
//! every term id. [`IncrementalDtm`] is the streaming replacement
//! (DESIGN.md §17):
//!
//! * **Append-only vocabulary.** Term ids are assigned in first-seen
//!   order and never change — the invariant that lets warm-started
//!   NMF keep its `H` columns aligned across folds.
//! * **Folded DF counts.** Each [`IncrementalDtm::push_docs`] call
//!   adds the new documents' rows and increments document
//!   frequencies; no earlier row is revisited.
//! * **Touched-term IDF maintenance.** `idf(n, df) = log2 n − log2 df`
//!   separates into a corpus-size part (identical for every term) and
//!   a per-term part (changes only when the term's DF changes). A
//!   fold therefore shifts the cached IDF vector by the scalar
//!   `log2(n′/n)` and recomputes entries exactly only for the terms
//!   the new slice touched.
//!
//! The cached IDF is part of the fold state and is serialized
//! bit-exactly with the rest of the matrix: replaying a fold sequence
//! reproduces the weights down to the last bit, which is what the
//! incremental pipeline's bit-identity guarantee rests on. (The cache
//! can drift from a *fresh* batch IDF computation by float-rounding
//! ulps — the fold chain, not the batch formula, is the canonical
//! semantics.)

use crate::sparse::CsrMatrix;
use crate::vocab::Vocabulary;
use crate::weighting::{idf, tf_transform, uses_idf, uses_l2_norm, Weighting};

/// Reused per-fold workspace: token-id and touched-term buffers live
/// here so folds allocate nothing per document.
#[derive(Debug, Clone, Default)]
pub struct DtmScratch {
    /// Interned token ids of the document being folded.
    ids: Vec<usize>,
    /// Term ids whose DF changed in the current fold (sorted,
    /// deduplicated at the end of the fold).
    touched: Vec<usize>,
}

impl DtmScratch {
    /// Empty workspace.
    pub fn new() -> Self {
        DtmScratch { ids: Vec::with_capacity(256), touched: Vec::with_capacity(256) }
    }
}

/// Borrowed view of an [`IncrementalDtm`]'s serializable state:
/// `(scheme, terms in id order, df, idf bits, rows)`.
pub type DtmParts<'a> = (Weighting, Vec<&'a str>, &'a [usize], &'a [f64], &'a [Vec<(usize, f64)>]);

/// A growable document-term matrix with incrementally maintained
/// weights.
#[derive(Debug, Clone)]
pub struct IncrementalDtm {
    scheme: Weighting,
    vocab: Vocabulary,
    /// Per-term document frequency.
    df: Vec<usize>,
    /// Cached IDF vector, maintained via the touched-term update.
    idf: Vec<f64>,
    /// Per-document sparse rows: sorted `(term id, raw count)`.
    rows: Vec<Vec<(usize, f64)>>,
    /// Terms touched by the most recent fold (observability/tests;
    /// not part of the serialized state).
    last_touched: Vec<usize>,
    scratch: DtmScratch,
}

impl IncrementalDtm {
    /// Empty matrix under the given weighting scheme.
    pub fn new(scheme: Weighting) -> Self {
        IncrementalDtm {
            scheme,
            vocab: Vocabulary::new(),
            df: Default::default(),
            idf: Default::default(),
            rows: Default::default(),
            last_touched: Default::default(),
            scratch: DtmScratch::new(),
        }
    }

    /// Folds a batch of tokenized documents into the matrix.
    ///
    /// Appends one sparse row per document, increments DF counts, and
    /// updates the cached IDF: a scalar `log2(n′/n)` shift for
    /// untouched terms plus an exact recompute for the touched ones.
    pub fn push_docs(&mut self, docs: &[Vec<String>]) {
        let old_n = self.rows.len();
        self.scratch.touched.clear();
        for doc in docs {
            self.scratch.ids.clear();
            for tok in doc {
                self.scratch.ids.push(self.vocab.intern(tok));
            }
            self.scratch.ids.sort_unstable();
            let mut row: Vec<(usize, f64)> = Default::default();
            for &id in &self.scratch.ids {
                match row.last_mut() {
                    Some((last, count)) if *last == id => *count += 1.0,
                    _ => row.push((id, 1.0)),
                }
            }
            self.df.resize(self.vocab.len(), 0);
            for &(id, _) in &row {
                self.df[id] += 1;
                self.scratch.touched.push(id);
            }
            self.rows.push(row);
        }
        self.scratch.touched.sort_unstable();
        self.scratch.touched.dedup();
        let new_n = self.rows.len();

        // IDF maintenance. From an empty matrix every term is fresh,
        // so the cache is exact; on later folds untouched terms see
        // only the corpus-size shift.
        self.idf.resize(self.vocab.len(), 0.0);
        if old_n == 0 {
            for (t, slot) in self.idf.iter_mut().enumerate() {
                *slot = idf(new_n, self.df[t]);
            }
        } else if new_n > old_n {
            let shift = (new_n as f64 / old_n as f64).log2();
            for slot in self.idf.iter_mut() {
                *slot += shift;
            }
            for &t in &self.scratch.touched {
                self.idf[t] = idf(new_n, self.df[t]);
            }
        }
        std::mem::swap(&mut self.last_touched, &mut self.scratch.touched);
    }

    /// Number of documents folded so far.
    pub fn n_docs(&self) -> usize {
        self.rows.len()
    }

    /// Vocabulary size (columns).
    pub fn n_terms(&self) -> usize {
        self.vocab.len()
    }

    /// The append-only vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Per-term document frequencies.
    pub fn doc_freqs(&self) -> &[usize] {
        &self.df
    }

    /// The cached IDF vector (fold-chain semantics — see module docs).
    pub fn cached_idf(&self) -> &[f64] {
        &self.idf
    }

    /// Term ids the most recent [`IncrementalDtm::push_docs`] touched.
    pub fn touched(&self) -> &[usize] {
        &self.last_touched
    }

    /// The weighted matrix over the full (stable-id) column space.
    ///
    /// Terms outside the `[min_df, max_df_ratio · n]` document-
    /// frequency band are masked to weight 0 — the column *exists*
    /// (ids never move) but carries no mass, which is how streaming
    /// pruning keeps warm-started factor columns aligned.
    pub fn weighted(&self, min_df: usize, max_df_ratio: f64) -> CsrMatrix {
        let n = self.rows.len();
        let max_df = max_df_ratio * n as f64;
        let keep = |t: usize| self.df[t] >= min_df && (self.df[t] as f64) <= max_df;
        let weighted_rows: Vec<Vec<(usize, f64)>> = self
            .rows
            .iter()
            .map(|row| {
                let mut out: Vec<(usize, f64)> = row
                    .iter()
                    .map(|&(t, c)| {
                        let w = if !keep(t) {
                            0.0
                        } else {
                            let tf = tf_transform(self.scheme, c);
                            if uses_idf(self.scheme) {
                                tf * self.idf[t]
                            } else {
                                tf
                            }
                        };
                        (t, w)
                    })
                    .collect();
                if uses_l2_norm(self.scheme) {
                    let norm = out.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
                    if norm > 0.0 {
                        for (_, w) in out.iter_mut() {
                            *w /= norm;
                        }
                    }
                }
                out
            })
            .collect();
        CsrMatrix::from_rows(self.vocab.len(), &weighted_rows)
    }

    /// Decomposes the serializable state:
    /// `(scheme, terms in id order, df, idf bits, rows)`.
    pub fn parts(&self) -> DtmParts<'_> {
        let terms: Vec<&str> = self.vocab.iter().map(|(_, t)| t).collect();
        (self.scheme, terms, &self.df, &self.idf, &self.rows)
    }

    /// Rebuilds a matrix from [`IncrementalDtm::parts`] output. The
    /// reconstruction is bit-exact: folding further documents into it
    /// behaves identically to folding into the original.
    pub fn from_parts(
        scheme: Weighting,
        terms: &[String],
        df: Vec<usize>,
        idf: Vec<f64>,
        rows: Vec<Vec<(usize, f64)>>,
    ) -> Self {
        let mut vocab = Vocabulary::new();
        for t in terms {
            vocab.intern(t);
        }
        IncrementalDtm {
            scheme,
            vocab,
            df,
            idf,
            rows,
            last_touched: Default::default(),
            scratch: DtmScratch::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weighting::idf_vector;

    fn docs(texts: &[&str]) -> Vec<Vec<String>> {
        texts
            .iter()
            .map(|t| t.split_whitespace().map(str::to_string).collect())
            .collect()
    }

    fn matrix_bits(m: &CsrMatrix) -> Vec<(usize, usize, u64)> {
        (0..m.rows())
            .flat_map(|i| {
                m.row(i)
                    .iter()
                    .map(move |(j, v)| (i, j, v.to_bits()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn single_push_matches_exact_idf() {
        let mut dtm = IncrementalDtm::new(Weighting::TfIdf);
        dtm.push_docs(&docs(&["a b a", "b c", "a c d"]));
        let exact = idf_vector(dtm.n_docs(), dtm.doc_freqs());
        for (t, (&cached, &want)) in dtm.cached_idf().iter().zip(&exact).enumerate() {
            assert_eq!(cached.to_bits(), want.to_bits(), "term {t}");
        }
    }

    #[test]
    fn vocabulary_ids_are_stable_across_folds() {
        let mut dtm = IncrementalDtm::new(Weighting::TfIdfNormalized);
        dtm.push_docs(&docs(&["brexit vote", "tariff vote"]));
        let brexit = dtm.vocab().get("brexit").unwrap();
        let vote = dtm.vocab().get("vote").unwrap();
        dtm.push_docs(&docs(&["huawei ban brexit", "iran oil"]));
        assert_eq!(dtm.vocab().get("brexit").unwrap(), brexit);
        assert_eq!(dtm.vocab().get("vote").unwrap(), vote);
        assert!(dtm.vocab().get("huawei").unwrap() > vote);
    }

    #[test]
    fn touched_terms_are_exact_untouched_within_ulps() {
        let mut dtm = IncrementalDtm::new(Weighting::TfIdf);
        dtm.push_docs(&docs(&["a b", "a c", "b c", "a d"]));
        dtm.push_docs(&docs(&["a e", "e f"]));
        let exact = idf_vector(dtm.n_docs(), dtm.doc_freqs());
        let touched = dtm.touched().to_vec();
        assert!(touched.contains(&dtm.vocab().get("a").unwrap()));
        assert!(touched.contains(&dtm.vocab().get("e").unwrap()));
        assert!(!touched.contains(&dtm.vocab().get("b").unwrap()));
        for (t, (&cached, &want)) in dtm.cached_idf().iter().zip(&exact).enumerate() {
            if touched.contains(&t) {
                assert_eq!(cached.to_bits(), want.to_bits(), "touched term {t} must be exact");
            } else {
                assert!((cached - want).abs() < 1e-9, "untouched term {t} drifted");
            }
        }
    }

    #[test]
    fn identical_fold_sequences_are_bit_identical() {
        let chunks = [docs(&["a b a", "b c"]), docs(&["a c d"]), docs(&["d e", "a e f"])];
        let mut x = IncrementalDtm::new(Weighting::TfIdfNormalized);
        let mut y = IncrementalDtm::new(Weighting::TfIdfNormalized);
        for c in &chunks {
            x.push_docs(c);
            y.push_docs(c);
        }
        assert_eq!(
            matrix_bits(&x.weighted(1, 1.0)),
            matrix_bits(&y.weighted(1, 1.0))
        );
    }

    #[test]
    fn chunked_folds_track_batch_weights_closely() {
        let all = docs(&["a b a", "b c", "a c d", "d e", "a e f", "b f g"]);
        let mut batch = IncrementalDtm::new(Weighting::TfIdfNormalized);
        batch.push_docs(&all);
        let mut chunked = IncrementalDtm::new(Weighting::TfIdfNormalized);
        for c in all.chunks(2) {
            chunked.push_docs(c);
        }
        let (a, b) = (batch.weighted(1, 1.0), chunked.weighted(1, 1.0));
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.nnz(), b.nnz());
        for i in 0..a.rows() {
            for ((ja, va), (jb, vb)) in a.row(i).iter().zip(b.row(i).iter()) {
                assert_eq!(ja, jb);
                assert!((va - vb).abs() < 1e-9, "row {i} col {ja}: {va} vs {vb}");
            }
        }
    }

    #[test]
    fn df_band_masks_columns_without_moving_ids() {
        let mut dtm = IncrementalDtm::new(Weighting::Tf);
        // "a" in every doc (df = 4), "rare" in one.
        dtm.push_docs(&docs(&["a rare b", "a b", "a c", "a c"]));
        let m = dtm.weighted(2, 0.9);
        let a_col = dtm.vocab().get("a").unwrap();
        let rare_col = dtm.vocab().get("rare").unwrap();
        assert_eq!(m.cols(), dtm.n_terms());
        for i in 0..m.rows() {
            assert_eq!(m.get(i, a_col), 0.0, "df=4/4 exceeds max_df_ratio 0.9");
            assert_eq!(m.get(i, rare_col), 0.0, "df=1 < min_df=2");
        }
        let b_col = dtm.vocab().get("b").unwrap();
        assert!(m.get(0, b_col) > 0.0);
    }

    #[test]
    fn parts_roundtrip_then_fold_is_bit_identical() {
        let chunks = [docs(&["a b a", "b c"]), docs(&["a c d", "e f"])];
        let mut whole = IncrementalDtm::new(Weighting::TfIdfNormalized);
        whole.push_docs(&chunks[0]);
        let (scheme, terms, df, idfv, rows) = whole.parts();
        let owned_terms: Vec<String> = terms.iter().map(|s| s.to_string()).collect();
        let mut revived = IncrementalDtm::from_parts(
            scheme,
            &owned_terms,
            df.to_vec(),
            idfv.to_vec(),
            rows.to_vec(),
        );
        whole.push_docs(&chunks[1]);
        revived.push_docs(&chunks[1]);
        assert_eq!(
            matrix_bits(&whole.weighted(1, 1.0)),
            matrix_bits(&revived.weighted(1, 1.0))
        );
    }
}
