//! # nd-vectorize
//!
//! Document vectorization: [`Vocabulary`] interning, a [CSR sparse
//! document-term matrix](sparse::CsrMatrix), and the term-weighting
//! schemes of the paper's §3.1 — raw term frequency (Eq. 1), inverse
//! document frequency (Eq. 2), TF-IDF (Eq. 3) and ℓ²-normalized
//! TF-IDF (Eq. 4–5), which is what the topic-modeling module feeds to
//! NMF.
//!
//! ```
//! use nd_vectorize::{DtmBuilder, Weighting};
//!
//! let docs = vec![
//!     vec!["brexit".to_string(), "vote".to_string(), "brexit".to_string()],
//!     vec!["tariff".to_string(), "vote".to_string()],
//! ];
//! let dtm = DtmBuilder::new().build(&docs);
//! let a = dtm.weighted(Weighting::TfIdfNormalized);
//! assert_eq!(a.rows(), 2);
//! // every row of the normalized matrix has unit l2 norm
//! for i in 0..a.rows() {
//!     let norm: f64 = a.row(i).values().iter().map(|v| v * v).sum::<f64>().sqrt();
//!     assert!((norm - 1.0).abs() < 1e-9);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dtm;
pub mod incremental;
pub mod sparse;
pub mod vocab;
pub mod weighting;

pub use dtm::{DocumentTermMatrix, DtmBuilder};
pub use incremental::{DtmScratch, IncrementalDtm};
pub use sparse::CsrMatrix;
pub use vocab::Vocabulary;
pub use weighting::Weighting;
