//! Compressed sparse row (CSR) matrix.
//!
//! Document-term matrices are overwhelmingly sparse (a news article
//! touches a few hundred of hundreds of thousands of vocabulary
//! terms), so the vectorizer stores weights in CSR and only densifies
//! on demand for the NMF solver.

use nd_linalg::Mat;

/// A sparse row: parallel `indices`/`values` arrays, indices strictly
/// ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseRowView<'a> {
    indices: &'a [usize],
    values: &'a [f64],
}

impl<'a> SparseRowView<'a> {
    /// Column indices of the stored entries (ascending).
    pub fn indices(&self) -> &'a [usize] {
        self.indices
    }

    /// Values parallel to [`Self::indices`].
    pub fn values(&self) -> &'a [f64] {
        self.values
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Value at column `j` (`0.0` when not stored).
    pub fn get(&self, j: usize) -> f64 {
        match self.indices.binary_search(&j) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterator over `(col, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + 'a {
        self.indices.iter().copied().zip(self.values.iter().copied())
    }

    /// Dot product with a dense vector.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        self.iter().map(|(j, v)| v * dense[j]).sum()
    }

    /// ℓ² norm of the row.
    pub fn norm2(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Compressed sparse row matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from per-row `(col, value)` lists.
    ///
    /// Entries within a row are sorted by column; duplicate columns in
    /// one row are summed. Zero values are dropped.
    pub fn from_rows(cols: usize, rows: &[Vec<(usize, f64)>]) -> Self {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for entries in rows {
            let mut sorted: Vec<(usize, f64)> = entries.clone();
            sorted.sort_by_key(|&(c, _)| c);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(sorted.len());
            for (c, v) in sorted {
                debug_assert!(c < cols, "column {c} out of bounds (cols={cols})");
                match merged.last_mut() {
                    Some((lc, lv)) if *lc == c => *lv += v,
                    _ => merged.push((c, v)),
                }
            }
            for (c, v) in merged {
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix { rows: rows.len(), cols, row_ptr, col_idx, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// View of row `i`.
    ///
    /// # Panics
    /// Panics when `i >= rows` (internal logic error).
    pub fn row(&self, i: usize) -> SparseRowView<'_> {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        SparseRowView { indices: &self.col_idx[lo..hi], values: &self.values[lo..hi] }
    }

    /// Entry at `(i, j)`; `0.0` when not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row(i).get(j)
    }

    /// Per-column count of rows containing each column — the document
    /// frequency vector `n_ij` of paper Eq. (2).
    pub fn column_document_frequency(&self) -> Vec<usize> {
        let mut df = vec![0usize; self.cols];
        for &c in &self.col_idx {
            df[c] += 1;
        }
        df
    }

    /// Applies `f(row, col, value) -> value` to every stored entry,
    /// returning a new matrix (zeros produced by `f` are kept stored;
    /// re-sparsification is not needed for the weighting pipeline).
    pub fn map_entries(&self, mut f: impl FnMut(usize, usize, f64) -> f64) -> CsrMatrix {
        let mut out = self.clone();
        for i in 0..self.rows {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            for k in lo..hi {
                out.values[k] = f(i, self.col_idx[k], self.values[k]);
            }
        }
        out
    }

    /// Scales each row to unit ℓ² norm (zero rows untouched) — the
    /// normalization of paper Eq. (4)–(5).
    pub fn normalize_rows_l2(&self) -> CsrMatrix {
        let mut out = self.clone();
        for i in 0..self.rows {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let norm: f64 = self.values[lo..hi].iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                for v in &mut out.values[lo..hi] {
                    *v /= norm;
                }
            }
        }
        out
    }

    /// Densifies to an `nd_linalg::Mat` (rows × cols).
    pub fn to_dense(&self) -> Mat {
        let mut m = Mat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row(i).iter() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Sparse × dense product `self * rhs` (rhs is `cols × k`).
    ///
    /// Output rows depend only on their own sparse row, so row blocks
    /// run in parallel with no synchronisation; per-row accumulation
    /// order is the stored (ascending-column) order regardless of
    /// thread count.
    ///
    /// # Panics
    /// Debug-asserts `rhs.rows() == self.cols()`.
    pub fn matmul_dense(&self, rhs: &Mat) -> Mat {
        let mut out = Mat::zeros(0, 0);
        self.matmul_dense_into(rhs, &mut out);
        out
    }

    /// [`CsrMatrix::matmul_dense`] into a caller-provided scratch
    /// matrix (reshaped and overwritten). Iteration loops — NMF runs
    /// this product every update — reuse `out` across calls;
    /// bit-identical to the allocating version.
    pub fn matmul_dense_into(&self, rhs: &Mat, out: &mut Mat) {
        debug_assert_eq!(rhs.rows(), self.cols);
        let k = rhs.cols();
        out.reset_zeroed(self.rows, k);
        if self.rows == 0 || k == 0 {
            return;
        }
        let work_per_row = (self.nnz() / self.rows).saturating_mul(k).max(1);
        let rows_per_chunk = nd_par::auto_chunk_len(self.rows, 16);
        nd_par::par_for_rows(out.as_mut_slice(), k, rows_per_chunk, work_per_row, |i0, block| {
            for (bi, out_row) in block.chunks_exact_mut(k).enumerate() {
                for (j, v) in self.row(i0 + bi).iter() {
                    let rhs_row = rhs.row(j);
                    for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                        *o += v * b;
                    }
                }
            }
        });
    }

    /// Transposed sparse × dense product `self^T * rhs` (rhs is `rows × k`).
    ///
    /// Output rows are indexed by *column* of the sparse matrix, so a
    /// row-parallel scatter would race. Instead the output is sharded
    /// by column range — one shard per worker — and every worker
    /// scans the matrix once, binary-searching each sparse row for
    /// the sub-range of columns it owns. Contributions to any output
    /// row still arrive in ascending document order, exactly as in
    /// the serial loop, so results are bit-for-bit reproducible.
    pub fn transpose_matmul_dense(&self, rhs: &Mat) -> Mat {
        let mut out = Mat::zeros(0, 0);
        self.transpose_matmul_dense_into(rhs, &mut out);
        out
    }

    /// [`CsrMatrix::transpose_matmul_dense`] into a caller-provided
    /// scratch matrix (reshaped and overwritten); bit-identical to the
    /// allocating version.
    pub fn transpose_matmul_dense_into(&self, rhs: &Mat, out: &mut Mat) {
        debug_assert_eq!(rhs.rows(), self.rows);
        let k = rhs.cols();
        out.reset_zeroed(self.cols, k);
        if self.cols == 0 || k == 0 {
            return;
        }
        // At most one shard per worker: each extra shard costs a full
        // pass over the row structure.
        let shard_rows = self.cols.div_ceil(nd_par::threads()).max(1);
        let work_per_row = (self.nnz() / self.cols).saturating_mul(k).max(1);
        nd_par::par_for_rows(out.as_mut_slice(), k, shard_rows, work_per_row, |c0, block| {
            let c_end = c0 + block.len() / k;
            for i in 0..self.rows {
                let row = self.row(i);
                let idx = row.indices();
                let lo = idx.partition_point(|&c| c < c0);
                let hi = idx.partition_point(|&c| c < c_end);
                if lo == hi {
                    continue;
                }
                let rhs_row = rhs.row(i);
                for (&col, &v) in idx[lo..hi].iter().zip(&row.values()[lo..hi]) {
                    let local = col - c0;
                    let out_row = &mut block[local * k..(local + 1) * k];
                    for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                        *o += v * b;
                    }
                }
            }
        });
    }

    /// Fused transposed product `rhs^T * self` (rhs is `rows × k`),
    /// written directly in `k × cols` layout — i.e. the transpose of
    /// [`CsrMatrix::transpose_matmul_dense_into`]'s result without
    /// materializing the `cols × k` intermediate or a transpose pass.
    /// NMF's H update consumes `(AᵀW)ᵀ` in exactly this layout.
    ///
    /// Output rows (one per rhs column) are sharded across workers;
    /// every worker streams the documents in ascending order, so each
    /// output entry accumulates its contributions in the same order as
    /// the unfused kernel — the two are bit-for-bit identical — and
    /// independently of the thread count.
    pub fn transpose_matmul_dense_t_into(&self, rhs: &Mat, out: &mut Mat) {
        debug_assert_eq!(rhs.rows(), self.rows);
        let k = rhs.cols();
        out.reset_zeroed(k, self.cols);
        if self.cols == 0 || k == 0 {
            return;
        }
        let cols = self.cols;
        let shard_rows = k.div_ceil(nd_par::threads()).max(1);
        let work_per_row = self.nnz().max(1);
        nd_par::par_for_rows(out.as_mut_slice(), cols, shard_rows, work_per_row, |t0, block| {
            for i in 0..self.rows {
                let row = self.row(i);
                if row.nnz() == 0 {
                    continue;
                }
                let rhs_row = rhs.row(i);
                for (local, out_row) in block.chunks_exact_mut(cols).enumerate() {
                    let w = rhs_row[t0 + local];
                    for (j, v) in row.iter() {
                        out_row[j] += v * w;
                    }
                }
            }
        });
    }

    /// Squared Frobenius norm of the sparse matrix.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }
}

/// CSR matrices plug straight into the matrix-free algorithms in
/// `nd-linalg` (randomized SVD for LSA): `apply`/`apply_t` are the
/// existing deterministic SpMM kernels. The GEMM packing scratch is
/// unused — sparse products need no panel packing.
impl nd_linalg::MatOp for CsrMatrix {
    fn nrows(&self) -> usize {
        self.rows
    }

    fn ncols(&self) -> usize {
        self.cols
    }

    fn apply_into(&self, rhs: &Mat, _scratch: &mut nd_linalg::GemmScratch, out: &mut Mat) {
        self.matmul_dense_into(rhs, out);
    }

    fn apply_t_into(&self, rhs: &Mat, _scratch: &mut nd_linalg::GemmScratch, out: &mut Mat) {
        self.transpose_matmul_dense_into(rhs, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 3, 0]]
        CsrMatrix::from_rows(3, &[vec![(0, 1.0), (2, 2.0)], vec![(1, 3.0)]])
    }

    #[test]
    fn construction_and_access() {
        let m = sample();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 1), 3.0);
    }

    #[test]
    fn unsorted_and_duplicate_entries_merged() {
        let m = CsrMatrix::from_rows(4, &[vec![(3, 1.0), (1, 2.0), (3, 4.0)]]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 3), 5.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.row(0).indices(), &[1, 3]);
    }

    #[test]
    fn zero_values_dropped() {
        let m = CsrMatrix::from_rows(2, &[vec![(0, 0.0), (1, 1.0)]]);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn document_frequency() {
        let m = CsrMatrix::from_rows(
            3,
            &[vec![(0, 1.0), (1, 1.0)], vec![(1, 2.0)], vec![(1, 1.0), (2, 1.0)]],
        );
        assert_eq!(m.column_document_frequency(), vec![1, 3, 1]);
    }

    #[test]
    fn row_dot_dense() {
        let m = sample();
        assert_eq!(m.row(0).dot_dense(&[1.0, 1.0, 1.0]), 3.0);
        assert_eq!(m.row(1).dot_dense(&[0.0, 2.0, 0.0]), 6.0);
    }

    #[test]
    fn normalize_rows() {
        let m = sample().normalize_rows_l2();
        let n0 = m.row(0).norm2();
        assert!((n0 - 1.0).abs() < 1e-12);
        assert!((m.row(1).norm2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_empty_row_safe() {
        let m = CsrMatrix::from_rows(2, &[vec![], vec![(0, 2.0)]]).normalize_rows_l2();
        assert_eq!(m.row(0).nnz(), 0);
        assert!((m.row(1).get(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn to_dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d.get(0, 2), 2.0);
        assert_eq!(d.get(1, 0), 0.0);
        assert_eq!(d.shape(), (2, 3));
    }

    #[test]
    fn matmul_dense_matches_dense_matmul() {
        let m = sample();
        let rhs = Mat::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let sparse_result = m.matmul_dense(&rhs);
        let dense_result = m.to_dense().matmul(&rhs).unwrap();
        assert_eq!(sparse_result, dense_result);
    }

    #[test]
    fn transpose_matmul_matches() {
        let m = sample();
        let rhs = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let got = m.transpose_matmul_dense(&rhs);
        let want = m.to_dense().transpose().matmul(&rhs).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn large_sparse_products_match_dense_reference() {
        // Deterministic pseudo-random sparse matrix large enough to
        // engage the parallel/sharded paths.
        let rows = 120;
        let cols = 90;
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let row_lists: Vec<Vec<(usize, f64)>> = (0..rows)
            .map(|_| {
                (0..12)
                    .map(|_| {
                        let c = (next() % cols as u64) as usize;
                        let v = (next() % 100) as f64 / 10.0 - 5.0;
                        (c, v)
                    })
                    .collect()
            })
            .collect();
        let m = CsrMatrix::from_rows(cols, &row_lists);
        let rhs = Mat::from_fn(cols, 7, |i, j| ((i * 7 + j) % 13) as f64 - 6.0);
        let got = m.matmul_dense(&rhs);
        let want = m.to_dense().matmul(&rhs).unwrap();
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }

        let rhs_t = Mat::from_fn(rows, 7, |i, j| ((i * 5 + j) % 11) as f64 - 5.0);
        let got_t = m.transpose_matmul_dense(&rhs_t);
        let want_t = m.to_dense().transpose().matmul(&rhs_t).unwrap();
        for (a, b) in got_t.as_slice().iter().zip(want_t.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn fused_transposed_product_bit_identical_to_unfused() {
        let m = sample();
        let rhs = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut fused = Mat::zeros(0, 0);
        m.transpose_matmul_dense_t_into(&rhs, &mut fused);
        let unfused = m.transpose_matmul_dense(&rhs).transpose();
        assert_eq!(fused.shape(), (2, 3));
        for (a, b) in fused.as_slice().iter().zip(unfused.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Larger pseudo-random case crossing the sharded path.
        let rows = 90;
        let cols = 70;
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let row_lists: Vec<Vec<(usize, f64)>> = (0..rows)
            .map(|_| {
                (0..9)
                    .map(|_| {
                        let c = (next() % cols as u64) as usize;
                        let v = (next() % 100) as f64 / 10.0 - 5.0;
                        (c, v)
                    })
                    .collect()
            })
            .collect();
        let big = CsrMatrix::from_rows(cols, &row_lists);
        let w = Mat::from_fn(rows, 8, |i, j| ((i * 3 + j) % 17) as f64 / 4.0 - 2.0);
        let mut fused_big = Mat::zeros(0, 0);
        big.transpose_matmul_dense_t_into(&w, &mut fused_big);
        let unfused_big = big.transpose_matmul_dense(&w).transpose();
        for (a, b) in fused_big.as_slice().iter().zip(unfused_big.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn mat_op_applies_match_direct_kernels() {
        use nd_linalg::{GemmScratch, MatOp};
        let m = sample();
        let mut scratch = GemmScratch::new();
        assert_eq!(MatOp::nrows(&m), 2);
        assert_eq!(MatOp::ncols(&m), 3);

        let rhs = Mat::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let mut out = Mat::zeros(0, 0);
        m.apply_into(&rhs, &mut scratch, &mut out);
        assert_eq!(out, m.matmul_dense(&rhs));

        let rhs_t = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        m.apply_t_into(&rhs_t, &mut scratch, &mut out);
        assert_eq!(out, m.transpose_matmul_dense(&rhs_t));
    }

    #[test]
    fn frobenius() {
        let m = sample();
        assert_eq!(m.frobenius_norm_sq(), 1.0 + 4.0 + 9.0);
    }

    #[test]
    fn map_entries_applies() {
        let m = sample().map_entries(|_, _, v| v * 10.0);
        assert_eq!(m.get(0, 2), 20.0);
    }
}
