//! Term ↔ index interning.

use std::collections::HashMap;

/// A bidirectional term ↔ index map.
///
/// Term ids are assigned densely in first-seen order, so a vocabulary
/// built from a deterministic corpus ordering is itself deterministic.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    index: HashMap<String, usize>,
    terms: Vec<String>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, term: &str) -> usize {
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id = self.terms.len();
        self.terms.push(term.to_string());
        self.index.insert(term.to_string(), id);
        id
    }

    /// Id of `term`, if known.
    pub fn get(&self, term: &str) -> Option<usize> {
        self.index.get(term).copied()
    }

    /// Term with id `id`, if in range.
    pub fn term(&self, id: usize) -> Option<&str> {
        self.terms.get(id).map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterator over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.terms.iter().enumerate().map(|(i, t)| (i, t.as_str()))
    }

    /// Builds a vocabulary from an iterator of token streams.
    pub fn from_documents<'a, I>(docs: I) -> Self
    where
        I: IntoIterator<Item = &'a Vec<String>>,
    {
        let mut v = Vocabulary::new();
        for doc in docs {
            for tok in doc {
                v.intern(tok);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_stable_ids() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a"), 0);
        assert_eq!(v.intern("b"), 1);
        assert_eq!(v.intern("a"), 0);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn roundtrip() {
        let mut v = Vocabulary::new();
        let id = v.intern("brexit");
        assert_eq!(v.term(id), Some("brexit"));
        assert_eq!(v.get("brexit"), Some(id));
        assert_eq!(v.get("unknown"), None);
        assert_eq!(v.term(99), None);
    }

    #[test]
    fn from_documents_first_seen_order() {
        let docs = vec![
            vec!["x".to_string(), "y".to_string()],
            vec!["y".to_string(), "z".to_string()],
        ];
        let v = Vocabulary::from_documents(&docs);
        assert_eq!(v.get("x"), Some(0));
        assert_eq!(v.get("y"), Some(1));
        assert_eq!(v.get("z"), Some(2));
    }

    #[test]
    fn iter_in_id_order() {
        let mut v = Vocabulary::new();
        v.intern("one");
        v.intern("two");
        let collected: Vec<_> = v.iter().collect();
        assert_eq!(collected, vec![(0, "one"), (1, "two")]);
    }
}
