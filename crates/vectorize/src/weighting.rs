//! Term-weighting schemes (paper §3.1).
//!
//! The paper defines, for a corpus `D` of `n` documents:
//!
//! * **TF** (Eq. 1): raw count of a term in a document.
//! * **IDF** (Eq. 2): `log2(n / n_ij)` where `n_ij` is the number of
//!   documents containing the term.
//! * **TF-IDF** (Eq. 3): the product.
//! * **TFIDF_N** (Eq. 4–5): TF-IDF with each document vector scaled to
//!   unit ℓ² norm — the weighting fed to NMF.
//!
//! Binary and log-scaled TF variants are included for the weighting
//! ablation bench (they are standard alternatives the paper's §4.9
//! design-choice discussion draws on, cf. Truică et al. 2016).

/// Weighting scheme selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Weighting {
    /// Raw term frequency (Eq. 1).
    Tf,
    /// Binary presence (1 if the term occurs).
    Binary,
    /// Sub-linear `1 + log2(tf)` scaling.
    LogTf,
    /// `tf * idf` (Eq. 3).
    TfIdf,
    /// ℓ²-normalized `tf * idf` (Eq. 4–5) — the paper's choice for NMF.
    TfIdfNormalized,
}

impl Weighting {
    /// All schemes, for sweep benches.
    pub const ALL: [Weighting; 5] = [
        Weighting::Tf,
        Weighting::Binary,
        Weighting::LogTf,
        Weighting::TfIdf,
        Weighting::TfIdfNormalized,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Weighting::Tf => "TF",
            Weighting::Binary => "Binary",
            Weighting::LogTf => "LogTF",
            Weighting::TfIdf => "TFIDF",
            Weighting::TfIdfNormalized => "TFIDF_N",
        }
    }
}

/// Inverse document frequency (paper Eq. 2): `log2(n / n_ij)`.
///
/// Terms appearing in every document get weight 0; terms appearing in
/// no document (df = 0) are defined to have IDF 0 rather than ∞, so a
/// vocabulary built on a larger corpus can be reused safely.
pub fn idf(n_docs: usize, doc_freq: usize) -> f64 {
    if doc_freq == 0 || n_docs == 0 {
        return 0.0;
    }
    (n_docs as f64 / doc_freq as f64).log2()
}

/// Computes the full IDF vector from document frequencies.
pub fn idf_vector(n_docs: usize, doc_freqs: &[usize]) -> Vec<f64> {
    doc_freqs.iter().map(|&df| idf(n_docs, df)).collect()
}

/// Applies a TF transform to a raw count.
pub fn tf_transform(scheme: Weighting, raw_count: f64) -> f64 {
    match scheme {
        Weighting::Binary => {
            if raw_count > 0.0 {
                1.0
            } else {
                0.0
            }
        }
        Weighting::LogTf => {
            if raw_count > 0.0 {
                1.0 + raw_count.log2()
            } else {
                0.0
            }
        }
        // TF-IDF variants use raw TF (Eq. 1) as their base.
        Weighting::Tf | Weighting::TfIdf | Weighting::TfIdfNormalized => raw_count,
    }
}

/// `true` if the scheme multiplies by IDF.
pub fn uses_idf(scheme: Weighting) -> bool {
    matches!(scheme, Weighting::TfIdf | Weighting::TfIdfNormalized)
}

/// `true` if the scheme ℓ²-normalizes document rows.
pub fn uses_l2_norm(scheme: Weighting) -> bool {
    matches!(scheme, Weighting::TfIdfNormalized)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idf_known_values() {
        // Term in 1 of 8 docs: log2(8) = 3.
        assert!((idf(8, 1) - 3.0).abs() < 1e-12);
        // Term in every doc: 0.
        assert_eq!(idf(8, 8), 0.0);
        // Term in half: 1.
        assert!((idf(8, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idf_degenerate_cases() {
        assert_eq!(idf(0, 0), 0.0);
        assert_eq!(idf(10, 0), 0.0);
    }

    #[test]
    fn idf_monotone_decreasing_in_df() {
        let n = 100;
        let mut prev = f64::INFINITY;
        for df in 1..=n {
            let v = idf(n, df);
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn tf_transforms() {
        assert_eq!(tf_transform(Weighting::Tf, 5.0), 5.0);
        assert_eq!(tf_transform(Weighting::Binary, 5.0), 1.0);
        assert_eq!(tf_transform(Weighting::Binary, 0.0), 0.0);
        assert!((tf_transform(Weighting::LogTf, 4.0) - 3.0).abs() < 1e-12);
        assert_eq!(tf_transform(Weighting::LogTf, 0.0), 0.0);
    }

    #[test]
    fn scheme_flags() {
        assert!(uses_idf(Weighting::TfIdf));
        assert!(uses_idf(Weighting::TfIdfNormalized));
        assert!(!uses_idf(Weighting::Tf));
        assert!(uses_l2_norm(Weighting::TfIdfNormalized));
        assert!(!uses_l2_norm(Weighting::TfIdf));
    }

    #[test]
    fn idf_vector_maps() {
        let v = idf_vector(4, &[1, 2, 4, 0]);
        assert!((v[0] - 2.0).abs() < 1e-12);
        assert!((v[1] - 1.0).abs() < 1e-12);
        assert_eq!(v[2], 0.0);
        assert_eq!(v[3], 0.0);
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> =
            Weighting::ALL.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), Weighting::ALL.len());
    }
}
