//! Breaking-news monitoring: topic modeling + event detection over a
//! live-ish document stream, the workload that motivates the paper's
//! introduction (detecting topics and events of interest as they
//! develop).
//!
//! ```bash
//! cargo run --release --example breaking_news
//! ```
//!
//! Simulates the deployed system's collection loop: polls the news
//! API every two simulated hours into the embedded document store,
//! then (as each simulated day closes) re-runs NMF and MABED over
//! everything collected so far and reports newly detected events —
//! the "checkpointed, always-retraining" operation mode of §4.9.

use newsdiff::core::event_module::{detect_news_events, EventModuleConfig};
use newsdiff::core::preprocess::{build_news_ed, build_news_tm};
use newsdiff::core::topic_module::{extract_topics, TopicModuleConfig};
use newsdiff::store::{Database, Filter};
use newsdiff::synth::time::{format_ts, DAY};
use newsdiff::synth::{World, WorldConfig};
use std::collections::HashSet;

fn main() {
    let world = World::generate(WorldConfig {
        days: 10,
        n_users: 300,
        min_influencers: 20,
        ..WorldConfig::small()
    });

    let dir = std::env::temp_dir().join(format!("newsdiff-breaking-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut db = Database::open(&dir).expect("open store");

    println!("breaking-news monitor over {} simulated days\n", world.config.days);

    let mut seen_events: HashSet<String> = HashSet::new();
    let mut stored = 0usize;

    for day in 1..=world.config.days {
        let day_end = world.config.start + day * DAY;

        // Collect everything published up to the end of this day.
        for article in world.articles.iter().filter(|a| a.timestamp < day_end).skip(stored) {
            db.collection("news")
                .insert(serde_json::json!({
                    "ts": article.timestamp,
                    "title": article.title,
                    "content": article.content,
                }))
                .expect("insert");
            stored += 1;
        }
        db.persist().expect("persist");

        // Rebuild the working corpus from the store (not from the
        // world — the store is the system of record, as in §4.1).
        let news = db.get_collection("news").expect("collection");
        let docs: Vec<_> = news.find(&Filter::All);
        let articles: Vec<newsdiff::synth::NewsArticle> = docs
            .iter()
            .map(|d| newsdiff::synth::NewsArticle {
                id: d["_id"].as_u64().unwrap_or(0),
                timestamp: d["ts"].as_u64().unwrap_or(0),
                source: String::new(),
                title: d["title"].as_str().unwrap_or("").to_string(),
                content: d["content"].as_str().unwrap_or("").to_string(),
                snippet: String::new(),
                gt_topic: 0,
            })
            .collect();

        // Event detection over everything so far.
        let ed = build_news_ed(&articles);
        let events = detect_news_events(
            &ed,
            &EventModuleConfig { n_news_events: 8, min_word_docs: 8, ..Default::default() },
        );
        let fresh: Vec<_> =
            events.iter().filter(|e| !seen_events.contains(&e.main_word)).collect();

        println!(
            "day {day:>2}: {stored:>5} articles collected, {} events known, {} new",
            events.len(),
            fresh.len()
        );
        for e in fresh {
            println!(
                "         NEW event “{}” [{} → {}] keywords: {}",
                e.main_word,
                format_ts(e.start),
                format_ts(e.end),
                e.related.iter().take(6).map(|(w, _)| w.as_str()).collect::<Vec<_>>().join(" ")
            );
            seen_events.insert(e.main_word.clone());
        }
    }

    // Final daily digest: topics over the full collection.
    let tm = build_news_tm(&world.articles);
    let topics = extract_topics(&tm, &TopicModuleConfig { n_topics: 6, ..Default::default() });
    println!("\nfinal topic digest:");
    for t in &topics.topics {
        println!("  • {}", t.keywords.join(" "));
    }

    std::fs::remove_dir_all(&dir).ok();
}
