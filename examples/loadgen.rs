//! Load generator for the sharded serving layer: boots a disposable
//! multi-model server, then drives it with the SLO harness's traffic
//! profiles and prints a latency/throughput summary per profile.
//!
//! ```bash
//! cargo run --release --example loadgen                    # all profiles
//! cargo run --release --example loadgen -- --mode closed   # one profile
//! cargo run --release --example loadgen -- --smoke         # fast CI mode
//! cargo run --release --example loadgen -- --json          # JSON summaries
//! ```
//!
//! Profiles (`--mode`): `closed` (fixed concurrency, hot-model skew,
//! cache-busting rows), `open` (Poisson arrivals at `--rps`), `burst`
//! (open loop with periodic rate spikes), `loris` (slow-loris
//! adversaries while a healthy probe keeps measuring), or `all`.
//!
//! Other flags: `--shards N`, `--models N`, `--dim N`, `--clients N`,
//! `--requests N` (per client), `--rps N`, `--duration-ms N`,
//! `--skew S`, `--seed N`. `--smoke` shrinks everything and asserts
//! the run was healthy (no transport errors, loris connections cut).

use newsdiff::serve::loadgen::{
    boot_fixture, closed_loop, fixture_models, open_loop, slow_loris, BurstProfile,
    LoadSummary, TrafficMix,
};
use newsdiff::serve::shard::ShardConfig;
use newsdiff::serve::{BatchConfig, ServeConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

struct Options {
    mode: String,
    smoke: bool,
    json: bool,
    shards: usize,
    models: usize,
    dim: usize,
    clients: usize,
    requests: usize,
    rps: f64,
    duration: Duration,
    skew: f64,
    seed: u64,
    rows: usize,
    workers: usize,
    cache_rows: usize,
    max_wait_us: u64,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
    };
    let num = |name: &str, default: f64| {
        value_of(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let smoke = flag("--smoke");
    Options {
        mode: value_of("--mode").unwrap_or_else(|| "all".to_string()),
        smoke,
        json: flag("--json"),
        shards: num("--shards", 4.0) as usize,
        models: num("--models", 8.0) as usize,
        dim: num("--dim", if smoke { 16.0 } else { 64.0 }) as usize,
        clients: num("--clients", if smoke { 4.0 } else { 16.0 }) as usize,
        requests: num("--requests", if smoke { 40.0 } else { 400.0 }) as usize,
        rps: num("--rps", if smoke { 150.0 } else { 500.0 }),
        duration: Duration::from_millis(num(
            "--duration-ms",
            if smoke { 800.0 } else { 4000.0 },
        ) as u64),
        skew: num("--skew", 1.2),
        seed: num("--seed", 42.0) as u64,
        rows: num("--rows", 1.0) as usize,
        workers: num("--workers", 2.0) as usize,
        cache_rows: num("--cache-rows", 4096.0) as usize,
        max_wait_us: num("--max-wait-us", 2000.0) as u64,
    }
}

fn print_summary(title: &str, s: &LoadSummary, json: bool) {
    if json {
        println!("{}", serde_json::json!({"profile": title, "summary": s.to_json()}));
        return;
    }
    println!("-- {title} --");
    println!(
        "  sent {:>7}  ok {:>7}  shed {:>5}  errors {:>3}  late {:>5}",
        s.sent, s.ok, s.shed, s.errors, s.late
    );
    println!(
        "  {:>8.0} req/s   p50 {:>7}us   p99 {:>8}us   p99.9 {:>8}us   max {:>8}us",
        s.rps, s.p50_us, s.p99_us, s.p999_us, s.max_us
    );
}

fn main() {
    let options = parse_args();
    let dir: PathBuf = std::env::temp_dir()
        .join(format!("nd-loadgen-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let config = ServeConfig {
        batch: BatchConfig {
            workers: options.workers,
            max_wait: Duration::from_micros(options.max_wait_us),
            ..BatchConfig::default()
        },
        cache_rows: options.cache_rows,
        shard: ShardConfig { shards: options.shards, ..ShardConfig::default() },
        // Tight head deadline so the loris profile resolves quickly.
        head_deadline: Duration::from_millis(if options.smoke { 300 } else { 1000 }),
        ..ServeConfig::default()
    };
    let server = match boot_fixture(&dir, options.models, options.dim, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to boot fixture server: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.addr();
    if !options.json {
        println!(
            "serving {} models (dim {}) on {} across {} shards",
            options.models, options.dim, addr, options.shards
        );
    }

    let mut mix = TrafficMix::hot_skew(fixture_models(options.models), options.dim);
    mix.skew = options.skew;
    mix.batch_rows = options.rows;
    let run_all = options.mode == "all";
    let mut healthy = true;

    if run_all || options.mode == "closed" {
        let s = closed_loop(addr, options.clients, options.requests, &mix, options.seed);
        healthy &= s.errors == 0 && s.ok > 0;
        print_summary("closed-loop hot-skew cache-bust", &s, options.json);
    }
    if run_all || options.mode == "open" {
        let s = open_loop(
            addr,
            options.rps,
            options.duration,
            options.clients,
            &mix,
            options.seed,
            None,
        );
        healthy &= s.errors == 0 && s.ok > 0;
        print_summary("open-loop poisson", &s, options.json);
    }
    if run_all || options.mode == "burst" {
        let burst = BurstProfile {
            period: Duration::from_millis(500),
            burst_len: Duration::from_millis(100),
            multiplier: 4.0,
        };
        let s = open_loop(
            addr,
            options.rps,
            options.duration,
            options.clients,
            &mix,
            options.seed,
            Some(&burst),
        );
        // Bursts may legitimately shed; transport errors still count
        // against health.
        healthy &= s.errors == 0 && s.ok > 0;
        print_summary("open-loop poisson bursts", &s, options.json);
    }
    if run_all || options.mode == "loris" {
        let loris_addr: SocketAddr = addr;
        let hold = if options.smoke {
            Duration::from_millis(1000)
        } else {
            Duration::from_millis(2500)
        };
        let adversary = std::thread::spawn(move || slow_loris(loris_addr, 8, hold));
        // Healthy probe traffic while the adversaries squat.
        let s = closed_loop(addr, 2, options.requests.min(100), &mix, options.seed ^ 1);
        let report = match adversary.join() {
            Ok(r) => r,
            Err(_) => {
                eprintln!("loris thread panicked");
                std::process::exit(1);
            }
        };
        healthy &= s.errors == 0 && s.ok > 0 && report.dropped == report.opened;
        if options.json {
            println!(
                "{}",
                serde_json::json!({
                    "profile": "slow-loris",
                    "opened": report.opened,
                    "dropped": report.dropped,
                    "healthy_probe": s.to_json(),
                })
            );
        } else {
            println!("-- slow-loris --");
            println!(
                "  adversaries opened {}  dropped by server {}",
                report.opened, report.dropped
            );
            print_summary("  healthy probe during loris", &s, false);
        }
    }

    // Final shed/served accounting straight from the server.
    let metrics = server.metrics();
    if !options.json {
        println!(
            "server totals: {} predictions, {} batches, {} overload 503s",
            metrics.predictions.get(),
            metrics.batches.get(),
            metrics.overload_rejections.get(),
        );
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    if options.smoke {
        if !healthy {
            eprintln!("SMOKE FAILED: transport errors or surviving loris connections");
            std::process::exit(1);
        }
        println!("SMOKE OK");
    }
}
