//! Pattern-mining demo: generate per-user event trajectories with
//! planted behavioral signatures (churn, engagement funnels, error
//! chains) plus a mid-window concept drift, mine them with PrefixSpan
//! and the co-occurrence pass, and verify that every planted signature
//! is recovered from the catalog by its exact pattern id.
//!
//! ```bash
//! cargo run --release --example patterns_demo            # full corpus
//! cargo run --release --example patterns_demo -- --smoke # fast CI mode
//! ```
//!
//! Smoke mode shrinks the corpus and asserts the recovery invariants
//! (exact planted support, drift shifting the funnel topic), so CI
//! exercises the whole mining path in well under a second.

use newsdiff::patterns::{
    cooccurrence, mine, symbol_label, MiningConfig, PatternCatalog, SequenceConfig,
};
use newsdiff::synth::{generate_trajectories, TrajectoryConfig, TrajectorySet};

struct Options {
    smoke: bool,
    n_users: usize,
    days: u64,
}

fn parse_args() -> Options {
    let smoke = std::env::args().any(|a| a == "--smoke");
    Options {
        smoke,
        n_users: if smoke { 400 } else { 2000 },
        days: if smoke { 14 } else { 30 },
    }
}

/// Mines one time window into a ranked catalog.
fn mine_window(
    set: &TrajectorySet,
    window: (u64, u64),
    seq_cfg: &SequenceConfig,
    mining: &MiningConfig,
) -> PatternCatalog {
    let db = set.sequence_db(window, seq_cfg);
    let mined = mine(&db, mining);
    let pairs = cooccurrence(&db, mining.threshold(db.len()) as usize);
    PatternCatalog::build(db.len(), mined, pairs, 256)
}

fn main() {
    let options = parse_args();
    let cfg = TrajectoryConfig::default();
    let seq_cfg = SequenceConfig::default();
    let mining = MiningConfig::default();

    // 1. Generate the corpus: cohorts of users carrying planted
    //    motifs on top of sparse background noise.
    let set = generate_trajectories(options.n_users, 0, options.days, &cfg);
    let total_events: usize = set.trajectories.iter().map(Vec::len).sum();
    println!(
        "generated {} users x {} days: {} events, {} planted signatures",
        options.n_users,
        options.days,
        total_events,
        set.planted.len()
    );

    // 2. Mine the full window.
    let catalog = mine_window(&set, (set.start, set.end), &seq_cfg, &mining);
    println!(
        "\nmined {} patterns over {} users (min support {:.0}%):",
        catalog.patterns.len(),
        catalog.n_users,
        mining.min_support * 100.0
    );
    for p in catalog.patterns.iter().take(10) {
        println!(
            "  [{:>10}] {:<28} {} users  support {:.3}  score {:.3}",
            p.category.label(),
            p.render(),
            p.user_count,
            p.support,
            p.score
        );
    }

    // 3. Ground-truth recovery: every planted signature must be in the
    //    catalog under its exact pattern id, with exact cohort support
    //    (cohorts are index ranges and noise never emits the motif
    //    events, so the counts match to the user).
    println!("\nplanted-signature recovery:");
    let mut recovered = 0;
    for sig in &set.planted {
        match catalog.find(sig.id) {
            Some(p) => {
                let exact = p.user_count as usize == sig.n_users;
                println!(
                    "  {:<14} id {:016x}  planted {:>4} users, mined {:>4}  {}",
                    sig.name,
                    sig.id,
                    sig.n_users,
                    p.user_count,
                    if exact { "exact" } else { "MISMATCH" }
                );
                if options.smoke {
                    assert!(exact, "{}: planted {} != mined {}", sig.name, sig.n_users, p.user_count);
                }
                recovered += 1;
            }
            None => {
                println!("  {:<14} id {:016x}  NOT RECOVERED", sig.name, sig.id);
            }
        }
    }
    if options.smoke {
        assert_eq!(recovered, set.planted.len(), "every planted signature must be recovered");
    }

    // 4. Concept drift: the funnel cohort moves to a new topic at the
    //    drift boundary, so mining each half recovers different ids.
    let early = mine_window(&set, (set.start, set.drift_at), &seq_cfg, &mining);
    let late = mine_window(&set, (set.drift_at, set.end), &seq_cfg, &mining);
    let funnel_early = set.signature("funnel_early").expect("funnel_early signature");
    let funnel_late = set.signature("funnel_late").expect("funnel_late signature");
    println!(
        "\nconcept drift at day {}: early window catalogs {} patterns, late {}",
        (set.drift_at - set.start) / 86_400,
        early.patterns.len(),
        late.patterns.len()
    );
    println!(
        "  early-topic funnel {:<22} early: {:<9} late: {}",
        funnel_early.id_hex(),
        found(&early, funnel_early.id),
        found(&late, funnel_early.id)
    );
    println!(
        "  late-topic funnel  {:<22} early: {:<9} late: {}",
        funnel_late.id_hex(),
        found(&early, funnel_late.id),
        found(&late, funnel_late.id)
    );
    if options.smoke {
        assert!(early.find(funnel_early.id).is_some(), "early funnel mined in early window");
        assert!(early.find(funnel_late.id).is_none(), "late funnel absent before the drift");
        assert!(late.find(funnel_late.id).is_some(), "late funnel mined in late window");
        assert!(late.find(funnel_early.id).is_none(), "early funnel absent after the drift");
    }

    // 5. Co-occurrence pairs over the full window.
    println!("\ntop co-occurring symbol pairs:");
    for pair in catalog.pairs.iter().take(5) {
        println!(
            "  {:<5} + {:<5} {} users  jaccard {:.3}",
            symbol_label(pair.a),
            symbol_label(pair.b),
            pair.count,
            pair.jaccard
        );
    }

    if options.smoke {
        println!("\nsmoke OK: all planted signatures recovered exactly, drift shifted the catalog");
    }
}

/// Render helper for the drift table.
fn found(catalog: &PatternCatalog, id: u64) -> &'static str {
    if catalog.find(id).is_some() {
        "mined"
    } else {
        "absent"
    }
}

/// Hex rendering for pattern ids, matching the `/patterns` endpoint.
trait IdHex {
    fn id_hex(&self) -> String;
}

impl IdHex for newsdiff::synth::PlantedSignature {
    fn id_hex(&self) -> String {
        format!("{:016x}", self.id)
    }
}
