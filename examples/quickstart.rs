//! Quickstart: the whole paper pipeline, end to end, on a small
//! synthetic world.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a two-week news + Twitter world, extracts topics with
//! NMF, detects events with MABED, correlates them, builds the A1/A2
//! feature datasets and trains the MLP audience-interest predictor —
//! then prints what each stage found and how much the metadata vector
//! improved accuracy.

use newsdiff::core::features::DatasetVariant;
use newsdiff::core::pipeline::{Pipeline, PipelineConfig};
use newsdiff::core::predict::{train_and_eval, NetworkKind, PredictConfig, Target};
use newsdiff::synth::time::format_ts;

fn main() {
    println!("newsdiff quickstart — running the Figure 1 pipeline on a synthetic world\n");

    let output = Pipeline::new(PipelineConfig::small()).run().expect("pipeline");

    println!(
        "world: {} news articles, {} tweets, {} users over {} simulated days\n",
        output.world.articles.len(),
        output.world.tweets.len(),
        output.world.users.len(),
        output.world.config.days
    );

    println!("news topics (NMF):");
    for t in output.topics.topics.iter().take(5) {
        println!("  NT{}: {}", t.id + 1, t.keywords.join(" "));
    }

    println!("\ntrending news topics (topic ↔ news event, cosine ≥ 0.7):");
    for t in output.trending.iter().take(5) {
        println!(
            "  topic NT{} ↔ event “{}” (sim {:.2}, starts {})",
            t.topic_id + 1,
            t.event.main_word,
            t.similarity,
            format_ts(t.event.start)
        );
    }

    println!(
        "\ncorrelation: {} <trending topic, Twitter event> pairs; {} Twitter events matched nothing",
        output.correlation.pairs.len(),
        output.correlation.unmatched_twitter.len()
    );

    // Train the audience-interest predictor with and without metadata.
    let config = PredictConfig { batch_size: 512, max_epochs: 100, ..Default::default() };
    let a1 = output.dataset(DatasetVariant::A1, 7);
    let a2 = output.dataset(DatasetVariant::A2, 7);
    println!("\ntraining MLP 1 on {} event-tweet samples…", a1.len());
    let without = train_and_eval(&a1, NetworkKind::Mlp1, Target::Likes, &config);
    let with = train_and_eval(&a2, NetworkKind::Mlp1, Target::Likes, &config);

    println!(
        "likes prediction (average accuracy): embeddings only = {:.3}, with metadata = {:.3} ({:+.3})",
        without.average_accuracy,
        with.average_accuracy,
        with.average_accuracy - without.average_accuracy
    );
    println!("\nthe influencer + day-of-week metadata makes the predictor better — the paper's core claim.");
}
