//! Serving demo + load generator: train, checkpoint, boot the HTTP
//! server, drive it with concurrent clients, hot-swap a retrained
//! model mid-traffic, then demonstrate overload shedding.
//!
//! ```bash
//! cargo run --release --example serve_demo            # full pipeline
//! cargo run --release --example serve_demo -- --smoke # fast CI mode
//! ```
//!
//! Flags: `--smoke` (tiny synthetic dataset, fixed request budget,
//! asserts zero non-overload 5xx), `--clients N`, `--requests N`.

use newsdiff::core::checkpoint::save_checkpoint;
use newsdiff::core::features::DatasetVariant;
use newsdiff::core::pipeline::{Pipeline, PipelineConfig};
use newsdiff::core::predict::build_mlp;
use newsdiff::linalg::Mat;
use newsdiff::neural::{Network, Sgd, Trainer, TrainerConfig};
use newsdiff::serve::{BatchConfig, Client, ModelSpec, Registry, ServeConfig, Server};
use newsdiff::store::Database;
use serde_json::json;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Options {
    smoke: bool,
    clients: usize,
    requests: usize,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let value_of = |flag: &str, default: usize| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    Options {
        smoke,
        clients: value_of("--clients", if smoke { 4 } else { 8 }),
        requests: value_of("--requests", if smoke { 25 } else { 200 }),
    }
}

/// Trains the served model. Smoke mode uses a synthetic separable
/// dataset; full mode runs the paper pipeline on a small world and
/// trains on the A2 (embedding + metadata) features.
fn train(smoke: bool) -> (Network, Mat, Vec<usize>) {
    if smoke {
        let dim = 24;
        let x = Mat::random_normal(128, dim, 0.0, 1.0, 11);
        let y: Vec<usize> = (0..x.rows())
            .map(|i| {
                let s: f64 = x.row(i).iter().sum();
                if s < -1.0 {
                    0
                } else if s < 1.0 {
                    1
                } else {
                    2
                }
            })
            .collect();
        let mut network = build_mlp(dim, 11);
        let mut opt = Sgd::new(0.1);
        for _ in 0..15 {
            network.train_batch(&x, &y, &mut opt);
        }
        return (network, x, y);
    }
    println!("running the paper pipeline on a small synthetic world…");
    let output = Pipeline::new(PipelineConfig::small()).run().expect("pipeline");
    let dataset = output.dataset(DatasetVariant::A2, 7);
    println!(
        "pipeline done: {} event-tweet samples, {} features each",
        dataset.len(),
        dataset.x.cols()
    );
    let mut network = build_mlp(dataset.x.cols(), 7);
    let mut opt = Sgd::new(0.5);
    let trainer = Trainer::new(TrainerConfig {
        batch_size: 512,
        max_epochs: 40,
        early_stopping: None,
        seed: 7,
    });
    let report = trainer.fit(&mut network, &dataset.x, &dataset.y_likes, &mut opt);
    println!("trained MLP to loss {:.4} in {} epochs", report.final_loss(), report.epochs);
    (network, dataset.x.clone(), dataset.y_likes.clone())
}

fn checkpoint(dir: &PathBuf, network: &Network) -> u64 {
    let mut db = Database::open(dir).expect("open store");
    save_checkpoint(&mut db, "likes", network).expect("save checkpoint")
}

/// Drives the server with `clients` threads x `requests` requests and
/// returns `(status_2xx, status_503, other, rows_predicted)`.
fn run_load(
    addr: std::net::SocketAddr,
    probe: &Arc<Mat>,
    clients: usize,
    requests: usize,
) -> (usize, usize, usize, usize) {
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let probe = Arc::clone(probe);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut counts = (0usize, 0usize, 0usize, 0usize);
                for r in 0..requests {
                    let i = (c * 31 + r * 7) % probe.rows();
                    // Every third request is a 4-row batch.
                    let body = if r % 3 == 0 {
                        let rows: Vec<Vec<f64>> = (0..4)
                            .map(|k| probe.row((i + k) % probe.rows()).to_vec())
                            .collect();
                        json!({"rows": rows})
                    } else {
                        json!({"features": probe.row(i).to_vec()})
                    };
                    let rows_sent = if r % 3 == 0 { 4 } else { 1 };
                    match client.post_json("/predict", &body) {
                        Ok(response) if response.status == 200 => {
                            counts.0 += 1;
                            counts.3 += rows_sent;
                        }
                        Ok(response) if response.status == 503 => counts.1 += 1,
                        Ok(_) | Err(_) => counts.2 += 1,
                    }
                }
                counts
            })
        })
        .collect();
    let mut total = (0, 0, 0, 0);
    for w in workers {
        let c = w.join().expect("load client");
        total.0 += c.0;
        total.1 += c.1;
        total.2 += c.2;
        total.3 += c.3;
    }
    total
}

fn main() {
    let options = parse_args();
    let dir = std::env::temp_dir().join(format!("nd-serve-demo-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // 1. Train and checkpoint.
    let (network, x, y) = train(options.smoke);
    let input_dim = x.cols();
    let version = checkpoint(&dir, &network);
    println!("checkpointed model 'likes' v{version} ({input_dim} inputs)\n");

    // 2. Boot the server on an ephemeral port.
    let registry = Registry::load(
        &dir,
        vec![ModelSpec::new("likes", input_dim, move || build_mlp(input_dim, 0))],
        2,
    )
    .expect("load registry");
    let server = Server::start(ServeConfig::default(), registry).expect("start server");
    println!("serving on http://{}  (POST /predict, GET /models|/healthz|/metrics)\n", server.addr());

    // 3. Concurrent load.
    let probe = Arc::new(x);
    let started = Instant::now();
    let (ok, rejected, failed, rows) =
        run_load(server.addr(), &probe, options.clients, options.requests);
    let elapsed = started.elapsed();
    let metrics = server.metrics();
    println!(
        "load: {} clients x {} requests -> {} ok, {} shed (503), {} failed in {:.2?}",
        options.clients, options.requests, ok, rejected, failed, elapsed
    );
    println!(
        "      {:.0} rows/s | {} forward passes for {} rows (mean batch {:.1}) | cache hits {}",
        rows as f64 / elapsed.as_secs_f64(),
        metrics.batches.get(),
        metrics.batch_rows.sum(),
        metrics.batch_rows.sum() as f64 / metrics.batches.get().max(1) as f64,
        metrics.cache_hits.get(),
    );

    // 4. Retrain briefly and hot-swap while the server keeps running.
    let mut retrained = build_mlp(input_dim, 0);
    retrained.import_params(&network.export_params()).expect("same architecture");
    let mut opt = Sgd::new(0.05);
    for _ in 0..3 {
        retrained.train_batch(&probe, &y, &mut opt);
    }
    let v2 = checkpoint(&dir, &retrained);
    let mut admin = Client::connect(server.addr()).expect("admin connect");
    let reload = admin.post_json("/admin/reload", &json!({})).expect("reload");
    assert_eq!(reload.status, 200, "reload failed: {}", reload.text());
    println!("\nhot swap: checkpointed v{v2}, reloaded -> {}", reload.text());
    let (ok2, _, failed2, _) = run_load(server.addr(), &probe, options.clients, 10);
    println!("post-swap traffic: {ok2} ok, {failed2} failed");

    let demo_failures = failed + failed2;
    server.shutdown();

    // 5. Deliberate overload against a deliberately tiny queue.
    let registry = Registry::load(
        &dir,
        vec![ModelSpec::new("likes", input_dim, move || build_mlp(input_dim, 0))],
        2,
    )
    .expect("reload registry");
    let tiny = Server::start(
        ServeConfig {
            batch: BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(50),
                queue_capacity: 4,
                workers: 1,
            },
            cache_rows: 0,
            ..ServeConfig::default()
        },
        registry,
    )
    .expect("start overload server");
    let (ok3, rejected3, failed3, _) = run_load(tiny.addr(), &probe, 6, 8);
    println!(
        "\noverload drill (queue=4 rows): {ok3} ok, {rejected3} shed with 503+Retry-After, {failed3} failed"
    );
    tiny.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    if options.smoke {
        assert_eq!(demo_failures, 0, "non-overload load phases must see zero 5xx");
        assert_eq!(failed3, 0, "overload must shed as 503, never 5xx/hang");
        assert!(rejected3 > 0, "overload drill must trigger backpressure");
        println!("\nsmoke OK: zero unexpected errors, backpressure engaged");
    }
}
