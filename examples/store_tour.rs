//! Tour of the embedded document store (the MongoDB substitute):
//! collections, filters, secondary indexes, durability and compaction.
//!
//! ```bash
//! cargo run --release --example store_tour
//! ```

use newsdiff::store::{Database, Filter};
use serde_json::json;

fn main() {
    let dir = std::env::temp_dir().join(format!("newsdiff-store-tour-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // --- Create and fill ---------------------------------------------------
    let mut db = Database::open(&dir).expect("open");
    let tweets = db.collection("tweets");
    for (text, likes, followers) in [
        ("brexit vote tonight", 4_200u64, 1_200_000u64),
        ("derby winner disqualified", 310, 5_400),
        ("my cat sleeping", 12, 96),
        ("tariff escalation latest", 870, 44_000),
        ("iran tanker incident", 2_950, 380_000),
    ] {
        tweets
            .insert(json!({
                "text": text,
                "likes": likes,
                "user": {"followers": followers},
            }))
            .expect("insert");
    }
    println!("inserted {} tweets", tweets.len());

    // --- Query --------------------------------------------------------------
    let viral = tweets.find(&Filter::range("likes", Some(1001.0), None));
    println!("\nviral tweets (>1000 likes):");
    for t in &viral {
        println!("  {} ({} likes)", t["text"], t["likes"]);
    }

    let influencer_content = tweets.find(&Filter::And(vec![
        Filter::range("user.followers", Some(10_000.0), None),
        Filter::contains("text", "a"),
    ]));
    println!("\ninfluencer tweets: {}", influencer_content.len());

    // --- Index acceleration ---------------------------------------------------
    tweets.create_index("likes");
    let warm = tweets.find(&Filter::range("likes", Some(100.0), Some(1000.0)));
    println!("\nwith a likes index, the 100–1000 bucket scan returns {} rows:", warm.len());
    for t in &warm {
        println!("  {} ({})", t["text"], t["likes"]);
    }

    // --- Durability ---------------------------------------------------------
    db.persist().expect("persist");
    drop(db);
    let mut db = Database::open(&dir).expect("reopen");
    println!(
        "\nreopened from WAL: {} tweets survive",
        db.get_collection("tweets").map(|c| c.len()).unwrap_or(0)
    );

    // --- Mutation + compaction ----------------------------------------------
    let tweets = db.collection("tweets");
    let boring: Vec<u64> = tweets
        .find(&Filter::range("likes", None, Some(99.0)))
        .iter()
        .filter_map(|d| d["_id"].as_u64())
        .collect();
    for id in boring {
        tweets.delete(id).expect("delete");
    }
    db.compact().expect("compact");
    println!(
        "deleted the cold tweets and compacted (snapshot generation {})",
        db.generation()
    );

    drop(db);
    let db = Database::open(&dir).expect("reopen after compaction");
    println!(
        "after compaction: {} tweets, all with ≥100 likes",
        db.get_collection("tweets").map(|c| c.len()).unwrap_or(0)
    );

    std::fs::remove_dir_all(&dir).ok();
}
