//! Virality monitor: train the audience-interest predictor once, then
//! score incoming tweets in (simulated) real time — the fake-news
//! mitigation deployment the paper's §5.8 motivates: flag content
//! predicted to go viral *before* the engagement arrives.
//!
//! ```bash
//! cargo run --release --example virality_monitor
//! ```

use newsdiff::core::features::{
    build_dataset, metadata_vector, DatasetVariant, EventAssignment, METADATA_DIM,
};
use newsdiff::core::pipeline::{Pipeline, PipelineConfig};
use newsdiff::core::predict::{NetworkKind, PredictConfig, N_CLASSES};
use newsdiff::embed::{doc_embedding, AverageStrategy};
use newsdiff::linalg::Mat;
use newsdiff::neural::{Trainer, TrainerConfig};
use newsdiff::synth::bucket_count;
use std::collections::{HashMap, HashSet};

fn main() {
    // Phase 1: run the pipeline; hold out every 5th event tweet as the
    // "future stream" and train on the rest.
    let output = Pipeline::new(PipelineConfig::small()).run().expect("pipeline");
    let mut train_assignments: Vec<EventAssignment> = Vec::new();
    let mut stream: Vec<usize> = Vec::new();
    for a in &output.assignments {
        let (held, kept): (Vec<usize>, Vec<usize>) =
            a.tweet_indices.iter().copied().enumerate().fold(
                (Vec::new(), Vec::new()),
                |(mut h, mut k), (pos, idx)| {
                    if pos % 5 == 0 {
                        h.push(idx);
                    } else {
                        k.push(idx);
                    }
                    (h, k)
                },
            );
        stream.extend(held);
        train_assignments.push(EventAssignment { event_idx: a.event_idx, tweet_indices: kept });
    }
    let train_ds = build_dataset(
        DatasetVariant::A2,
        &output.correlated_events,
        &train_assignments,
        &output.world.tweets,
        &output.tweet_tokens,
        &output.vectors,
        7,
    );
    println!(
        "training virality model on {} historical event-tweet samples…",
        train_ds.len()
    );

    let kind = NetworkKind::Mlp1;
    let mut network = kind.build(train_ds.x.cols(), 42);
    let mut optimizer = kind.optimizer();
    let config = PredictConfig::default();
    let trainer = Trainer::new(TrainerConfig {
        batch_size: 512,
        max_epochs: 100,
        early_stopping: config.early_stopping.clone(),
        seed: 42,
    });
    let report = trainer.fit(&mut network, &train_ds.x, &train_ds.y_likes, optimizer.as_mut());
    println!("trained in {} epochs (final loss {:.4})\n", report.epochs, report.final_loss());

    // Phase 2: stream the held-out tweets and score their expected
    // likes bucket before "seeing" the engagement.
    let emb_dim = output.vectors.dim();
    let labels = ["cold (<100 likes)", "warm (100–1000)", "VIRAL (>1000)"];

    println!("scoring a stream of unseen tweets:");
    let mut shown = 0;
    let mut correct = 0;
    let mut scored = 0;
    for &idx in &stream {
        let tweet = &output.world.tweets[idx];
        // Embed against the best-matching correlated event vocabulary.
        let Some(event) = output
            .correlated_events
            .iter()
            .find(|e| e.matches_document(tweet.timestamp, &output.tweet_tokens[idx], 0.2))
        else {
            continue;
        };
        let vocab: HashSet<String> = event.all_terms().into_iter().collect();
        let tokens: Vec<String> = output.tweet_tokens[idx]
            .iter()
            .filter(|t| vocab.contains(t.as_str()))
            .cloned()
            .collect();
        let emb = doc_embedding(
            &output.vectors,
            &tokens,
            AverageStrategy::SkipWords,
            &HashMap::new(),
            7,
        );
        let mut features = Mat::zeros(1, emb_dim + METADATA_DIM);
        features.row_mut(0)[..emb_dim].copy_from_slice(&emb);
        features.row_mut(0)[emb_dim..]
            .copy_from_slice(&metadata_vector(tweet.author_followers, tweet.timestamp));

        let predicted = network.predict_classes(&features)[0];
        let actual = bucket_count(tweet.likes) as usize;
        scored += 1;
        if predicted == actual {
            correct += 1;
        }
        if shown < 12 {
            println!(
                "  @{:<14} “{}…” → predicted {} (actual: {} likes)",
                tweet.author_handle,
                tweet.text.chars().take(36).collect::<String>(),
                labels[predicted.min(N_CLASSES - 1)],
                tweet.likes
            );
            shown += 1;
        }
    }
    if scored > 0 {
        println!(
            "\nstream accuracy on {scored} unseen tweets: {:.3}",
            correct as f64 / scored as f64
        );
    }
    println!("tweets predicted viral can be routed to fact-checking before they spread (§5.8).");
}
