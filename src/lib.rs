//! # newsdiff
//!
//! A from-scratch Rust reproduction of *“A Deep Learning Architecture
//! for Audience Interest Prediction of News Topic on Social Media”*
//! (Truică, Apostol, Ștefu & Karras, EDBT 2021).
//!
//! The system predicts whether a news topic becomes viral on social
//! media: it extracts news topics (NMF over normalized TF-IDF),
//! detects news and Twitter events (MABED), correlates them through
//! averaged word-embedding cosine similarity, engineers features from
//! event-scoped tweet embeddings plus author/day metadata, and trains
//! MLP/CNN classifiers to predict likes and retweets buckets.
//!
//! This crate is a facade: it re-exports the workspace crates under
//! stable module names. See `DESIGN.md` for the architecture map and
//! `EXPERIMENTS.md` for the paper-vs-measured reproduction record.
//!
//! ```no_run
//! use newsdiff::core::pipeline::{Pipeline, PipelineConfig};
//!
//! // A scaled-down end-to-end run (takes a few seconds in release).
//! let output = Pipeline::new(PipelineConfig::small()).run().unwrap();
//! assert!(!output.trending.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Dense linear algebra (matrices, SVD, statistics, seeded RNG).
pub use nd_linalg as linalg;

/// Text preprocessing (tokenizer, lemmatizer, stemmer, NER, the
/// paper's three pipelines).
pub use nd_text as text;

/// Document vectorization (vocabulary, CSR matrices, TF-IDF family).
pub use nd_vectorize as vectorize;

/// Topic models (NMF, LDA, LSA, PLSI, coherence metrics).
pub use nd_topics as topics;

/// Event detection (time slicing, MABED).
pub use nd_events as events;

/// Embeddings (Word2Vec, Doc2Vec, averaged document embeddings).
pub use nd_embed as embed;

/// Neural networks (layers, losses, optimizers, training, metrics).
pub use nd_neural as neural;

/// Temporal audience-pattern mining (PrefixSpan, co-occurrence,
/// categorized pattern catalogs).
pub use nd_patterns as patterns;

/// Embedded document store (collections, filters, indexes, WAL).
pub use nd_store as store;

/// Synthetic world model (topics, events, users, engagement, APIs).
pub use nd_synth as synth;

/// Online prediction service (HTTP API, micro-batching, hot model
/// swap, backpressure).
pub use nd_serve as serve;

/// The assembled paper architecture (Figure 1) and experiment
/// utilities.
pub use nd_core as core;
