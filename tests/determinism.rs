//! Cross-thread-count determinism suite.
//!
//! The `nd-par` contract is that every parallel kernel in the
//! workspace produces **bit-for-bit identical** results at any
//! `NEWSDIFF_THREADS` setting: fixed chunk boundaries, in-order
//! reductions, and per-element accumulation orders that do not move
//! with the schedule. These tests run each hot kernel at 1, 2, and 8
//! threads and compare raw `f64` bits.
//!
//! Tests in this binary serialise their env-var mutations through a
//! mutex; even if a mutation raced, the contract itself guarantees the
//! values could not change — only the parallelism would.

use nd_embed::{Word2Vec, Word2VecConfig, Word2VecMode};
use nd_events::{AnomalySource, Mabed, MabedConfig, SlicedCorpus, TimestampedDoc};
use nd_linalg::rng::SplitMix64;
use nd_linalg::Mat;
use nd_neural::layer::{Conv1d, Dense, Layer};
use nd_topics::plsi::{Plsi, PlsiConfig};
use nd_topics::{Nmf, NmfConfig};
use nd_vectorize::DtmBuilder;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per thread count and asserts every run returns the
/// same `Vec<f64>` bit-for-bit.
fn assert_bitwise_stable<F: Fn() -> Vec<f64>>(label: &str, f: F) {
    let _guard = ENV_LOCK.lock().unwrap();
    let mut runs = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("NEWSDIFF_THREADS", threads);
        runs.push((threads, f()));
    }
    std::env::remove_var("NEWSDIFF_THREADS");
    let (_, reference) = &runs[0];
    for (threads, run) in &runs[1..] {
        assert_eq!(reference.len(), run.len(), "{label}: length at {threads} threads");
        for (i, (a, b)) in reference.iter().zip(run).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{label}: element {i} differs between 1 and {threads} threads ({a} vs {b})"
            );
        }
    }
}

fn random_mat(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut rng = SplitMix64::new(seed);
    Mat::from_fn(rows, cols, |_, _| rng.next_range(-1.0, 1.0))
}

/// A small synthetic corpus with heavy term overlap, enough rows for
/// the parallel paths to engage.
fn corpus() -> Vec<Vec<String>> {
    let pools = [
        ["market", "trade", "tariff", "import", "export"],
        ["vote", "party", "poll", "seat", "ballot"],
        ["storm", "flood", "rain", "wind", "coast"],
    ];
    let mut rng = SplitMix64::new(7);
    (0..120)
        .map(|i| {
            let pool = &pools[i % pools.len()];
            (0..14).map(|_| pool[rng.next_usize(pool.len())].to_string()).collect()
        })
        .collect()
}

#[test]
fn dense_matmul_is_thread_count_invariant() {
    let a = random_mat(64, 96, 1);
    let b = random_mat(96, 48, 2);
    assert_bitwise_stable("matmul", || a.matmul(&b).unwrap().as_slice().to_vec());
}

/// Resizing `NEWSDIFF_THREADS` *between dispatches inside one process*
/// must neither change results nor wedge the worker pool: the pool
/// re-reads the setting per dispatch, growing lazily and masking
/// surplus workers when it shrinks.
#[test]
fn thread_resize_between_dispatches_is_invariant() {
    let _guard = ENV_LOCK.lock().unwrap();
    let a = random_mat(96, 80, 21);
    let b = random_mat(80, 64, 22);
    let kernel = || {
        let mut out = a.matmul(&b).unwrap().as_slice().to_vec();
        out.extend_from_slice(a.gram().as_slice());
        out
    };
    std::env::set_var("NEWSDIFF_THREADS", "1");
    let reference = kernel();
    // Grow, shrink, regrow — every dispatch sees a different pool
    // shape, none may see different bits.
    for threads in ["2", "8", "1", "4", "2", "8"] {
        std::env::set_var("NEWSDIFF_THREADS", threads);
        let run = kernel();
        assert_eq!(reference.len(), run.len());
        for (i, (x, y)) in reference.iter().zip(&run).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "resize: element {i} differs after resizing to {threads} threads ({x} vs {y})"
            );
        }
    }
    std::env::remove_var("NEWSDIFF_THREADS");
}

/// Shapes above the packed-kernel cutoff, spanning several KC depth
/// blocks and MC row panels — the paths where work is actually split
/// across the pool and the serial depth-block order is what keeps the
/// bits pinned.
#[test]
fn packed_gemm_is_thread_count_invariant() {
    let a = random_mat(600, 500, 41);
    let b = random_mat(500, 400, 42);
    assert_bitwise_stable("packed matmul", || a.matmul(&b).unwrap().as_slice().to_vec());
    assert_bitwise_stable("fused transpose products", || {
        let mut scratch = nd_linalg::GemmScratch::new();
        let mut atb = Mat::zeros(500, 500);
        a.transpose_matmul_into(&a, &mut scratch, &mut atb);
        let mut abt = Mat::zeros(600, 600);
        a.matmul_transpose_into(&a, &mut scratch, &mut abt);
        let mut gram = Mat::zeros(500, 500);
        a.gram_into(&mut scratch, &mut gram);
        let mut out = atb.as_slice().to_vec();
        out.extend_from_slice(abt.as_slice());
        out.extend_from_slice(gram.as_slice());
        out
    });
}

#[test]
fn lsa_fit_is_thread_count_invariant() {
    use nd_topics::lsa::{Lsa, LsaConfig};
    use nd_vectorize::Weighting;
    let dtm = DtmBuilder::new().build(&corpus());
    let a = dtm.weighted(Weighting::TfIdfNormalized);
    assert_bitwise_stable("lsa", || {
        let m = Lsa::new(LsaConfig { n_topics: 3, n_iter: 4, seed: 11 }).fit(&a, dtm.vocab());
        let mut out = m.doc_topic.as_slice().to_vec();
        out.extend_from_slice(m.topic_term.as_slice());
        out.push(m.objective);
        out
    });
}

#[test]
fn matvec_transpose_gram_are_thread_count_invariant() {
    let a = random_mat(120, 70, 3);
    let x: Vec<f64> = (0..70).map(|i| (i as f64).sin()).collect();
    assert_bitwise_stable("matvec", || a.matvec(&x).unwrap());
    assert_bitwise_stable("transpose", || a.transpose().as_slice().to_vec());
    assert_bitwise_stable("gram", || a.gram().as_slice().to_vec());
}

#[test]
fn sparse_products_are_thread_count_invariant() {
    let dtm = DtmBuilder::new().build(&corpus());
    let counts = dtm.counts();
    let rhs = random_mat(counts.cols(), 12, 4);
    let rhs_t = random_mat(counts.rows(), 12, 5);
    assert_bitwise_stable("csr * dense", || {
        counts.matmul_dense(&rhs).as_slice().to_vec()
    });
    assert_bitwise_stable("csr^T * dense", || {
        counts.transpose_matmul_dense(&rhs_t).as_slice().to_vec()
    });
}

#[test]
fn nmf_fit_is_thread_count_invariant() {
    let dtm = DtmBuilder::new().build(&corpus());
    assert_bitwise_stable("nmf", || {
        let m = Nmf::new(NmfConfig { n_topics: 3, max_iter: 5, tol: 0.0, seed: 11 })
            .fit(dtm.counts(), dtm.vocab());
        let mut out = m.doc_topic.as_slice().to_vec();
        out.extend_from_slice(m.topic_term.as_slice());
        out.push(m.objective);
        out
    });
}

#[test]
fn plsi_fit_is_thread_count_invariant() {
    let dtm = DtmBuilder::new().build(&corpus());
    assert_bitwise_stable("plsi", || {
        let m = Plsi::new(PlsiConfig { n_topics: 3, n_iter: 4, seed: 13 })
            .fit(dtm.counts(), dtm.vocab());
        let mut out = m.doc_topic.as_slice().to_vec();
        out.extend_from_slice(m.topic_term.as_slice());
        out.push(m.objective);
        out
    });
}

#[test]
fn word2vec_training_is_thread_count_invariant() {
    let docs = corpus();
    assert_bitwise_stable("word2vec", || {
        let wv = Word2Vec::new(Word2VecConfig {
            dim: 16,
            window: 3,
            negative: 4,
            epochs: 2,
            min_count: 1,
            subsample: 1e-3,
            mode: Word2VecMode::Cbow,
            seed: 17,
            ..Default::default()
        })
        .train(&docs);
        // Deterministic word order for the comparison.
        let mut words: Vec<&str> = wv.iter().map(|(w, _)| w).collect();
        words.sort_unstable();
        words.into_iter().flat_map(|w| wv.get(w).unwrap().to_vec()).collect()
    });
}

/// The sliced corpus backing the event-detection iteration tests:
/// three topical pools bursting in different slices.
fn timestamped_corpus() -> Vec<TimestampedDoc> {
    corpus()
        .into_iter()
        .enumerate()
        .map(|(i, tokens)| TimestampedDoc::new(1_000 + 60 * i as u64, tokens, i % 3))
        .collect()
}

/// `nd-lint`'s `nondet-hash-iter` rule exists because word iteration
/// order used to come from a `HashMap` and could differ between runs
/// (and between std versions). The corpus now stores words in a
/// `BTreeMap`; this pins the observable contract so a regression back
/// to hash order fails loudly rather than as a flaky eval.
#[test]
fn corpus_word_iteration_is_lexicographic() {
    let sliced = SlicedCorpus::build(&timestamped_corpus(), 600);
    let words: Vec<&str> = sliced.iter_words().map(|(w, _)| w).collect();
    assert!(!words.is_empty());
    let mut sorted = words.clone();
    sorted.sort_unstable();
    assert_eq!(words, sorted, "iter_words must yield lexicographic order");
}

/// Two detector runs over the same corpus in one process must emit
/// identical events — main words, related-word order, and weights to
/// the bit. Before the BTreeMap conversion the related-word candidate
/// loop iterated a `HashMap`, so equal-weight words could swap places
/// at the `max_related` cut between runs.
#[test]
fn mabed_events_are_identical_across_runs() {
    let sliced = SlicedCorpus::build(&timestamped_corpus(), 600);
    let detect = || {
        Mabed::new(MabedConfig {
            n_events: 5,
            min_word_docs: 2,
            source: AnomalySource::Presence,
            ..Default::default()
        })
        .detect(&sliced)
    };
    let (a, b) = (detect(), detect());
    assert!(!a.is_empty(), "corpus must produce at least one event");
    assert_eq!(a.len(), b.len());
    for (ea, eb) in a.iter().zip(&b) {
        assert_eq!(ea.main_word, eb.main_word);
        assert_eq!(ea.magnitude.to_bits(), eb.magnitude.to_bits());
        assert_eq!(ea.related.len(), eb.related.len());
        for ((wa, sa), (wb, sb)) in ea.related.iter().zip(&eb.related) {
            assert_eq!(wa, wb, "related-word order must be stable");
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
    }
}

/// `WordVectors::iter` now walks the insertion-order word list, and
/// trainers insert in sorted-vocabulary order — so iteration must
/// reproduce exactly, including vector bytes, across independent
/// trainings in one process.
#[test]
fn word_vector_iteration_is_stable_across_trainings() {
    let docs = corpus();
    let train = || {
        Word2Vec::new(Word2VecConfig {
            dim: 8,
            window: 2,
            negative: 3,
            epochs: 1,
            min_count: 1,
            seed: 31,
            ..Default::default()
        })
        .train(&docs)
    };
    let (wv_a, wv_b) = (train(), train());
    let flat = |wv: &nd_embed::WordVectors| -> Vec<(String, Vec<u64>)> {
        wv.iter()
            .map(|(w, v)| (w.to_string(), v.iter().map(|x| x.to_bits()).collect()))
            .collect()
    };
    assert!(!wv_a.is_empty());
    assert_eq!(flat(&wv_a), flat(&wv_b), "iteration order and vectors must be identical");
}

/// The staged pipeline's cache contract: a warm run replays every
/// artifact from disk (zero stage bodies execute) and reproduces the
/// cold run bit for bit — at any thread count, because replay never
/// touches the parallel kernels and the cold bodies are themselves
/// thread-count invariant (the tests above).
#[test]
fn pipeline_warm_runs_are_bit_identical_across_threads() {
    use newsdiff::core::pipeline::{Pipeline, PipelineConfig};
    let _guard = ENV_LOCK.lock().unwrap();
    let dir = PipelineConfig::shared_run_dir();

    std::env::set_var("NEWSDIFF_THREADS", "1");
    let mut cold_cfg = PipelineConfig::small().with_cache_dir(&dir);
    cold_cfg.cache.force = true;
    let (cold, cold_report) =
        Pipeline::new(cold_cfg).run_with_report().expect("cold run");
    assert_eq!(
        cold_report.executed(),
        cold_report.stages.len(),
        "force must execute every stage body"
    );
    let cold_digest = cold.content_digest();

    for threads in ["1", "2", "8"] {
        std::env::set_var("NEWSDIFF_THREADS", threads);
        let (warm, report) = Pipeline::new(PipelineConfig::small().with_cache_dir(&dir))
            .run_with_report()
            .expect("warm run");
        let executed: Vec<&str> = report
            .stages
            .iter()
            .filter(|s| s.cache.executed())
            .map(|s| s.stage)
            .collect();
        assert!(executed.is_empty(), "warm run at {threads} threads executed {executed:?}");
        assert_eq!(
            warm.content_digest(),
            cold_digest,
            "warm output differs from cold at {threads} threads"
        );
    }
    std::env::remove_var("NEWSDIFF_THREADS");
}

#[test]
fn neural_layers_are_thread_count_invariant() {
    let input = random_mat(24, 40, 19);
    assert_bitwise_stable("dense fwd/bwd", || {
        let mut layer = Dense::new(40, 24, 23);
        let out = layer.forward(&input, true);
        let grad_in = layer.backward(&out);
        let mut v = out.as_slice().to_vec();
        v.extend_from_slice(grad_in.as_slice());
        v.extend_from_slice(layer.grads());
        v
    });
    assert_bitwise_stable("conv1d fwd/bwd", || {
        let mut layer = Conv1d::new(40, 5, 6, 29);
        let out = layer.forward(&input, true);
        let grad_in = layer.backward(&out);
        let mut v = out.as_slice().to_vec();
        v.extend_from_slice(grad_in.as_slice());
        v.extend_from_slice(layer.grads());
        v
    });
}

/// The pattern-mining subsystem returns integer supports and sorts on
/// total orders, so the *entire serialized catalog* — patterns, ranks,
/// co-occurrence pairs — must be byte-identical at any thread count.
/// The corpus is sized so both the PrefixSpan root fan-out and the
/// co-occurrence chunk merge actually cross nd-par's serial cutoff.
#[test]
fn pattern_mining_is_thread_count_invariant() {
    use nd_patterns::{cooccurrence, mine, MiningConfig, PatternCatalog, SequenceConfig};
    use nd_store::artifact::ByteWriter;
    use nd_synth::{generate_trajectories, TrajectoryConfig};

    let _guard = ENV_LOCK.lock().unwrap();
    let set = generate_trajectories(5_000, 0, 7, &TrajectoryConfig::default());
    let db = set.full_db(&SequenceConfig::default());
    let mining = MiningConfig::default();
    let catalog_bytes = || {
        let mined = mine(&db, &mining);
        let pairs = cooccurrence(&db, mining.threshold(db.len()) as usize);
        let catalog = PatternCatalog::build(db.len(), mined, pairs, 512);
        assert!(!catalog.patterns.is_empty(), "corpus must mine a non-trivial catalog");
        let mut w = ByteWriter::new();
        catalog.encode(&mut w);
        w.into_bytes()
    };
    std::env::set_var("NEWSDIFF_THREADS", "1");
    let reference = catalog_bytes();
    for threads in ["2", "8"] {
        std::env::set_var("NEWSDIFF_THREADS", threads);
        let run = catalog_bytes();
        assert!(
            run == reference,
            "pattern catalog bytes differ between 1 and {threads} threads \
             ({} vs {} bytes)",
            reference.len(),
            run.len()
        );
    }
    std::env::remove_var("NEWSDIFF_THREADS");
}
