//! Cross-crate integration tests: the full pipeline against the
//! synthetic world's ground truth, exercising every crate through the
//! `newsdiff` facade.

use newsdiff::core::features::DatasetVariant;
use newsdiff::core::pipeline::{Pipeline, PipelineConfig, PipelineOutput};
use newsdiff::core::predict::{train_and_eval, NetworkKind, PredictConfig, Target};
use newsdiff::neural::EarlyStopping;
use newsdiff::synth::TopicKind;
use std::sync::OnceLock;

/// One shared small-scale pipeline run (release-mode tests share the
/// cost across assertions). The run goes through the workspace-shared
/// artifact cache, so across the whole test pass the small world is
/// trained once and replayed everywhere else.
fn output() -> &'static PipelineOutput {
    static OUT: OnceLock<PipelineOutput> = OnceLock::new();
    OUT.get_or_init(|| {
        Pipeline::new(PipelineConfig::small().with_cache_dir(PipelineConfig::shared_run_dir()))
            .run()
            .expect("pipeline")
    })
}

#[test]
fn q1_news_topics_gain_traction_on_social_media() {
    // Research question Q1: current events in mass media also gain
    // traction on social media — every trending news topic must match
    // at least one Twitter event (paper §5.5).
    let o = output();
    assert!(!o.trending.is_empty());
    let matched: std::collections::HashSet<usize> =
        o.correlation.pairs.iter().map(|p| p.trending_idx).collect();
    for i in 0..o.trending.len() {
        assert!(matched.contains(&i), "trending topic {i} unmatched");
    }
}

#[test]
fn q2_reverse_correlation_gives_same_pairs_but_not_all_twitter_events_match() {
    // Research question Q2 (paper §5.5, §5.8): the reverse correlation
    // yields the same pair set, and Twitter chatter exists with no
    // news counterpart.
    let o = output();
    let mut fwd: Vec<_> =
        o.correlation.pairs.iter().map(|p| (p.trending_idx, p.twitter_idx)).collect();
    let mut rev: Vec<_> = o
        .reverse_correlation
        .pairs
        .iter()
        .map(|p| (p.trending_idx, p.twitter_idx))
        .collect();
    fwd.sort_unstable();
    rev.sort_unstable();
    assert_eq!(fwd, rev);
    assert!(!o.correlation.unmatched_twitter.is_empty());
}

#[test]
fn planted_chatter_topics_stay_unmatched() {
    // The Table 7 behaviour with ground truth: Twitter-only topics
    // (Game of Thrones, food, …) must never correlate with a trending
    // news topic.
    let o = output();
    let chatter_vocab: std::collections::HashSet<&str> = o
        .world
        .topics
        .iter()
        .filter(|t| t.kind == TopicKind::TwitterOnly)
        .flat_map(|t| t.keywords.iter().copied())
        .collect();
    for pair in &o.correlation.pairs {
        let te = &o.twitter_events[pair.twitter_idx];
        assert!(
            !chatter_vocab.contains(te.main_word.as_str()),
            "chatter event '{}' matched a trending news topic",
            te.main_word
        );
    }
}

#[test]
fn q3_audience_interest_predictable_from_event_tweets() {
    // Research question Q3: likes/retweets buckets are predictable
    // well above chance from the event-scoped embeddings.
    let o = output();
    let ds = o.dataset(DatasetVariant::A1, 7);
    assert!(ds.len() >= 200, "need a meaningful dataset, got {}", ds.len());
    let config = PredictConfig {
        batch_size: 512,
        max_epochs: 80,
        early_stopping: Some(EarlyStopping { min_delta: 1e-3, patience: 5 }),
        ..Default::default()
    };
    let res = train_and_eval(&ds, NetworkKind::Mlp1, Target::Likes, &config);
    // 3-class problem: chance plain accuracy ≈ the majority share;
    // Eq. 17 average accuracy for chance ≈ 0.55-0.6. Demand clearly more.
    assert!(
        res.average_accuracy > 0.66,
        "content-only average accuracy too low: {}",
        res.average_accuracy
    );
}

#[test]
fn q4_metadata_improves_prediction() {
    // Research question Q4 — the headline claim: the metadata vector
    // (influencer one-hot + day of week) improves accuracy.
    let o = output();
    let config = PredictConfig {
        batch_size: 512,
        max_epochs: 100,
        early_stopping: Some(EarlyStopping { min_delta: 1e-3, patience: 5 }),
        ..Default::default()
    };
    for (plain, with_meta) in [
        (DatasetVariant::A1, DatasetVariant::A2),
        (DatasetVariant::B1, DatasetVariant::B2),
    ] {
        let base = train_and_eval(&o.dataset(plain, 7), NetworkKind::Mlp1, Target::Likes, &config);
        let meta =
            train_and_eval(&o.dataset(with_meta, 7), NetworkKind::Mlp1, Target::Likes, &config);
        assert!(
            meta.average_accuracy > base.average_accuracy + 0.02,
            "{:?}->{:?}: {} vs {}",
            plain,
            with_meta,
            base.average_accuracy,
            meta.average_accuracy
        );
    }
}

#[test]
fn detected_events_align_with_planted_bursts() {
    // Every correlated Twitter event must overlap a planted burst of a
    // topic containing its main word.
    let o = output();
    for ev in &o.correlated_events {
        let topic_idx = o
            .world
            .topics
            .iter()
            .position(|t| t.keywords.contains(&ev.main_word.as_str()));
        let Some(topic_idx) = topic_idx else {
            panic!("event main word '{}' not in any planted pool", ev.main_word);
        };
        let overlaps = o.world.events.iter().any(|g| {
            g.topic == topic_idx
                && g.start < ev.end
                && ev.start < g.end + g.twitter_lag + 2 * 86_400
        });
        assert!(overlaps, "event '{}' overlaps no planted burst", ev.main_word);
    }
}

#[test]
fn pipeline_is_deterministic() {
    let a = Pipeline::new(PipelineConfig::small()).run().expect("run a");
    let b = output();
    assert_eq!(a.trending.len(), b.trending.len());
    assert_eq!(a.correlation.pairs.len(), b.correlation.pairs.len());
    for (x, y) in a.twitter_events.iter().zip(&b.twitter_events) {
        assert_eq!(x.main_word, y.main_word);
        assert_eq!(x.start, y.start);
    }
}
