//! Streaming bit-identity suite (DESIGN.md §17).
//!
//! The incremental pipeline's contract: replaying slices `0..k` from
//! the artifact cache and folding slice `k` live is **bit-identical**
//! to folding all of `0..=k` cold — same artifact bytes, same content
//! digest, and identical downstream model predictions — at any
//! `NEWSDIFF_THREADS` setting. Env-var mutations serialize through a
//! file-local mutex, the `tests/determinism.rs` idiom.

use newsdiff::core::incremental::{StreamConfig, StreamPipeline, StreamState};
use newsdiff::core::predict::build_mlp;
use newsdiff::neural::{Sgd, Trainer, TrainerConfig};
use newsdiff::synth::{FirehoseConfig, WorldConfig};
use std::path::PathBuf;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// A 6-day world in 48-hour slices (3 slices), with cheap NMF /
/// Word2Vec budgets — enough data for every stage to produce
/// something, small enough to fold cold several times.
fn stream_config() -> StreamConfig {
    StreamConfig {
        firehose: FirehoseConfig {
            world: WorldConfig { days: 6, n_users: 80, min_influencers: 8, ..WorldConfig::small() },
            slice_hours: 48,
        },
        refine_iters: 15,
        embed_dim: 8,
        embed_epochs: 1,
        ..StreamConfig::small()
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nd-stream-bitid-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Trains a small MLP on the head state's document-topic memberships
/// (labels derived deterministically from the data itself) and
/// returns the prediction matrix as raw bits. Two states that are
/// bit-identical must produce bit-identical predictions; a state that
/// drifted anywhere upstream will not.
fn model_prediction_bits(state: &StreamState) -> Vec<u64> {
    let x = &state.topics.model.doc_topic;
    let y: Vec<usize> = (0..x.rows())
        .map(|i| {
            let row = x.row(i);
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(j, _)| j)
                .unwrap_or(0);
            argmax % 3
        })
        .collect();
    let mut network = build_mlp(x.cols(), 42);
    let trainer = Trainer::new(TrainerConfig {
        batch_size: 64,
        max_epochs: 3,
        early_stopping: None,
        seed: 42,
    });
    trainer.fit(&mut network, x, &y, &mut Sgd::new(0.05));
    network.predict_batch(x).as_slice().iter().map(|v| v.to_bits()).collect()
}

/// The tentpole acceptance test: for each thread count, populate the
/// cache over slices `0..2`, then fold slice 2 on top of the cached
/// replay — the head state must be byte-identical (content digest
/// over every artifact's bit-exact encoding) to a cold fold over all
/// three slices, and a model trained on either state must predict
/// identical bits. A fully warm re-run then replays without folding.
#[test]
fn cached_replay_plus_fold_equals_cold_run_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();

    // Cold reference at one thread, no cache.
    std::env::set_var("NEWSDIFF_THREADS", "1");
    let (cold, cold_report) = StreamPipeline::new(stream_config()).run(3).expect("cold run");
    assert_eq!(cold_report.executed(), 18, "cold run must fold every (stage, slice)");
    let cold_digest = cold.content_digest();
    let cold_preds = model_prediction_bits(&cold);

    for threads in ["1", "2", "8"] {
        std::env::set_var("NEWSDIFF_THREADS", threads);
        let dir = fresh_dir(threads);
        let pipeline = StreamPipeline::new(stream_config().with_cache_dir(&dir));

        // Populate the prefix 0..2, then extend: the cached prefix
        // replays and only slice 2 folds.
        pipeline.run(2).expect("prefix run");
        let (state, report) = pipeline.run(3).expect("extend run");
        let executed = report.executed_folds();
        assert!(
            executed.iter().all(|&(_, k)| k == 2) && executed.len() == 6,
            "at {threads} threads only slice 2 may fold, got {executed:?}"
        );
        assert_eq!(
            state.content_digest(),
            cold_digest,
            "replay+fold differs from cold at {threads} threads"
        );
        assert_eq!(
            model_prediction_bits(&state),
            cold_preds,
            "model predictions differ from cold at {threads} threads"
        );

        // Fully warm: six head decodes, zero folds, zero polls.
        let (warm, warm_report) = pipeline.run(3).expect("warm run");
        assert_eq!(warm_report.executed(), 0, "warm run folded at {threads} threads");
        assert_eq!(warm_report.slices_polled, 0);
        assert_eq!(warm.content_digest(), cold_digest);
        std::fs::remove_dir_all(&dir).ok();
    }
    std::env::remove_var("NEWSDIFF_THREADS");
}

/// The firehose contract the whole fold rests on: slice `k` is
/// bit-identical whether polled in order, out of order, or from a
/// fresh instance — and an uncached incremental run is deterministic.
#[test]
fn uncached_stream_runs_are_deterministic() {
    let pipeline = StreamPipeline::new(stream_config());
    let (a, _) = pipeline.run(2).expect("run a");
    let (b, _) = StreamPipeline::new(stream_config()).run(2).expect("run b");
    assert_eq!(a.content_digest(), b.content_digest());
    // The accumulated world equals the slices' concatenation.
    assert_eq!(a.world.slices.len(), 2);
    let n: usize = a.world.slices.iter().map(|s| s.n_articles).sum();
    assert_eq!(a.world.articles.len(), n);
}
