//! Planted-ground-truth recovery for the pattern-mining subsystem.
//!
//! The trajectory generator plants behavioral signatures — churn
//! run-ups, engagement funnels, error chains — into exact cohorts of
//! users, and exposes each plant's `pattern_id` and cohort size. These
//! tests mine the generated corpus and assert the catalog recovers
//! every signature **by id, at exact planted support** (cohorts are
//! index ranges and the background noise never emits motif events, so
//! there is no tolerance band), then check that the mid-window concept
//! drift moves the funnel signature between the two half-window
//! catalogs.

use newsdiff::patterns::{
    cooccurrence, mine, MiningConfig, PatternCatalog, PatternCategory, SequenceConfig,
};
use newsdiff::synth::{generate_trajectories, TrajectoryConfig, TrajectorySet};

fn catalog_for(set: &TrajectorySet, window: (u64, u64)) -> PatternCatalog {
    let db = set.sequence_db(window, &SequenceConfig::default());
    let mining = MiningConfig::default();
    let mined = mine(&db, &mining);
    let pairs = cooccurrence(&db, mining.threshold(db.len()) as usize);
    PatternCatalog::build(db.len(), mined, pairs, 512)
}

#[test]
fn every_planted_signature_is_recovered_by_id_at_exact_support() {
    let set = generate_trajectories(800, 0, 14, &TrajectoryConfig::default());
    let catalog = catalog_for(&set, (set.start, set.end));
    assert_eq!(set.planted.len(), 5, "generator plants five signatures");
    for sig in &set.planted {
        let p = catalog
            .find(sig.id)
            .unwrap_or_else(|| panic!("{} (id {:016x}) not in the catalog", sig.name, sig.id));
        assert_eq!(
            p.user_count as usize, sig.n_users,
            "{}: mined support must equal the planted cohort size",
            sig.name
        );
    }
}

#[test]
fn recovered_signatures_carry_their_behavioral_category() {
    let set = generate_trajectories(800, 0, 14, &TrajectoryConfig::default());
    let catalog = catalog_for(&set, (set.start, set.end));
    let category_of = |name: &str| {
        let sig = set.signature(name).unwrap_or_else(|| panic!("no signature {name}"));
        catalog.find(sig.id).unwrap_or_else(|| panic!("{name} not mined")).category
    };
    assert_eq!(category_of("churn"), PatternCategory::Churn);
    assert_eq!(category_of("funnel_early"), PatternCategory::Funnel);
    assert_eq!(category_of("funnel_late"), PatternCategory::Funnel);
    assert_eq!(category_of("engagement"), PatternCategory::Engagement);
    assert_eq!(category_of("error_chain"), PatternCategory::ErrorChain);
}

#[test]
fn concept_drift_moves_the_funnel_between_half_window_catalogs() {
    let set = generate_trajectories(800, 0, 14, &TrajectoryConfig::default());
    let early = catalog_for(&set, (set.start, set.drift_at));
    let late = catalog_for(&set, (set.drift_at, set.end));
    let funnel_early = set.signature("funnel_early").expect("funnel_early");
    let funnel_late = set.signature("funnel_late").expect("funnel_late");

    assert!(
        early.find(funnel_early.id).is_some(),
        "pre-drift funnel must be mined from the early window"
    );
    assert!(
        early.find(funnel_late.id).is_none(),
        "post-drift funnel must be absent before the boundary"
    );
    assert!(
        late.find(funnel_late.id).is_some(),
        "post-drift funnel must be mined from the late window"
    );
    assert!(
        late.find(funnel_early.id).is_none(),
        "pre-drift funnel must be absent after the boundary"
    );
    // Support within each half-window is still the exact cohort size.
    let mined_early = early.find(funnel_early.id).expect("early funnel");
    assert_eq!(mined_early.user_count as usize, funnel_early.n_users);
}

#[test]
fn cataloged_patterns_match_fresh_event_slices() {
    let set = generate_trajectories(800, 0, 14, &TrajectoryConfig::default());
    let catalog = catalog_for(&set, (set.start, set.end));
    let churn = set.signature("churn").expect("churn signature");
    // A fresh slice replaying the churn motif (with unrelated events
    // interleaved) matches the cataloged churn pattern by id.
    let mut slice: Vec<u32> = Vec::new();
    for e in &churn.events {
        slice.push(newsdiff::patterns::PatternEvent::View(6).symbol());
        slice.push(e.symbol());
    }
    let hits = catalog.match_slice(&slice);
    assert!(
        hits.iter().any(|p| p.id == churn.id),
        "slice containing the churn motif must match its catalog entry"
    );
}
