//! Artifact-cache correctness suite for the staged pipeline DAG.
//!
//! Uses a process-private run directory (cleaned at first use) so
//! cold/warm expectations are exact regardless of what earlier test
//! passes left in the workspace-shared cache. Tests share the cache
//! directory, so they serialize through a file-local mutex.

use newsdiff::core::pipeline::{CacheStatus, Pipeline, PipelineConfig, RunReport};
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

static LOCK: Mutex<()> = Mutex::new(());

const UPSTREAM: [&str; 5] = ["collect", "preprocess", "topics", "events", "embeddings"];

fn dir() -> PathBuf {
    std::env::temp_dir().join(format!("nd-pipeline-cache-{}", std::process::id()))
}

fn config() -> PipelineConfig {
    PipelineConfig::small().with_cache_dir(dir())
}

/// Cold-populates the private cache exactly once; returns the
/// baseline content digest.
fn baseline_digest() -> u64 {
    static DIGEST: OnceLock<u64> = OnceLock::new();
    *DIGEST.get_or_init(|| {
        std::fs::remove_dir_all(dir()).ok();
        let (out, report) = Pipeline::new(config()).run_with_report().expect("cold run");
        assert!(
            report.stages.iter().all(|s| s.cache == CacheStatus::Miss),
            "fresh directory must miss everywhere: {report:?}"
        );
        out.content_digest()
    })
}

fn status_of(report: &RunReport, stage: &str) -> CacheStatus {
    report.stage(stage).unwrap_or_else(|| panic!("no report for {stage}")).cache
}

#[test]
fn warm_rerun_replays_every_stage_bit_identically() {
    let _guard = LOCK.lock().unwrap();
    let cold = baseline_digest();
    let (out, report) = Pipeline::new(config()).run_with_report().expect("warm run");
    assert_eq!(report.executed(), 0, "warm run executed stage bodies: {report:?}");
    assert!(report.stages.iter().all(|s| s.cache == CacheStatus::Hit));
    assert_eq!(out.content_digest(), cold, "warm output must be bit-identical");
    // Every stage replayed a non-empty artifact payload.
    assert!(report.stages.iter().all(|s| s.bytes > 0));
}

#[test]
fn trending_threshold_change_recomputes_only_downstream_cone() {
    let _guard = LOCK.lock().unwrap();
    baseline_digest();
    let mut cfg = config();
    cfg.trending_threshold = 0.65; // lower than small()'s 0.7: keeps a superset
    let (_, report) = Pipeline::new(cfg.clone()).run_with_report().expect("dirty run");
    for stage in UPSTREAM {
        assert_eq!(status_of(&report, stage), CacheStatus::Hit, "{stage} must replay");
    }
    for stage in ["trending", "correlation", "features"] {
        assert_eq!(status_of(&report, stage), CacheStatus::Miss, "{stage} must recompute");
    }
    // The recomputation was itself cached: same config now fully hits.
    let (_, again) = Pipeline::new(cfg).run_with_report().expect("re-run");
    assert_eq!(again.executed(), 0);
}

#[test]
fn correlation_threshold_change_recomputes_exactly_correlation_and_features() {
    let _guard = LOCK.lock().unwrap();
    baseline_digest();
    let mut cfg = config();
    cfg.correlation_threshold = 0.6;
    let (_, report) = Pipeline::new(cfg).run_with_report().expect("dirty run");
    for stage in UPSTREAM {
        assert_eq!(status_of(&report, stage), CacheStatus::Hit, "{stage} must replay");
    }
    assert_eq!(
        status_of(&report, "trending"),
        CacheStatus::Hit,
        "correlation threshold must not dirty trending"
    );
    for stage in ["correlation", "features"] {
        assert_eq!(status_of(&report, stage), CacheStatus::Miss, "{stage} must recompute");
    }
}

#[test]
fn pattern_min_support_change_recomputes_exactly_the_patterns_stage() {
    let _guard = LOCK.lock().unwrap();
    baseline_digest();
    let mut cfg = config();
    cfg.patterns.mining.min_support = 0.08; // small()'s default is 0.05
    let (_, report) = Pipeline::new(cfg.clone()).run_with_report().expect("dirty run");
    for stage in UPSTREAM {
        assert_eq!(status_of(&report, stage), CacheStatus::Hit, "{stage} must replay");
    }
    for stage in ["trending", "correlation", "features"] {
        assert_eq!(
            status_of(&report, stage),
            CacheStatus::Hit,
            "a mining knob must not dirty {stage}"
        );
    }
    assert_eq!(status_of(&report, "patterns"), CacheStatus::Miss, "patterns must recompute");
    assert_eq!(report.executed(), 1, "only the patterns stage executes: {report:?}");
    // The recomputation was itself cached: same config now fully hits.
    let (_, again) = Pipeline::new(cfg).run_with_report().expect("re-run");
    assert_eq!(again.executed(), 0);
}

#[test]
fn corrupted_artifact_recomputes_and_heals_instead_of_erroring() {
    let _guard = LOCK.lock().unwrap();
    let cold = baseline_digest();

    // Truncate the cached trending artifact mid-payload.
    let victim = std::fs::read_dir(dir())
        .expect("cache dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("trending-") && n.ends_with(".art"))
        })
        .expect("trending artifact on disk");
    let full = std::fs::metadata(&victim).expect("metadata").len();
    let file = std::fs::OpenOptions::new().write(true).open(&victim).expect("open");
    file.set_len(full / 2).expect("truncate");
    drop(file);

    // The damaged artifact reads as a miss: only trending recomputes
    // (its fingerprint is unchanged, so downstream stages still hit),
    // and the output is still bit-identical to the cold run.
    let (out, report) = Pipeline::new(config()).run_with_report().expect("healing run");
    assert_eq!(status_of(&report, "trending"), CacheStatus::Miss, "corruption = miss");
    assert_eq!(report.executed(), 1, "only the damaged stage recomputes: {report:?}");
    assert_eq!(out.content_digest(), cold);

    // The recomputation healed the cache in place.
    let (_, healed) = Pipeline::new(config()).run_with_report().expect("healed run");
    assert_eq!(healed.executed(), 0);
    assert_eq!(std::fs::metadata(&victim).expect("metadata").len(), full);
}

/// Streaming counterpart of the heal test above: damaging one slice
/// artifact in the incremental cache must recompute exactly that
/// artifact's cone — the corrupted `(stage, slice)` plus the folds
/// that demand it — and nothing upstream or on unrelated stages.
#[test]
fn corrupted_stream_slice_artifact_heals_by_recomputing_exactly_its_cone() {
    use newsdiff::core::incremental::{StreamConfig, StreamPipeline};
    use newsdiff::core::pipeline::CacheStatus;
    use newsdiff::synth::{FirehoseConfig, WorldConfig};

    // Private to this test (its own directory), so no mutex needed.
    let dir = std::env::temp_dir().join(format!("nd-stream-heal-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // A 6-day world in 48-hour slices: 3 slices, cheap fold budgets.
    let base = StreamConfig {
        firehose: FirehoseConfig {
            world: WorldConfig {
                days: 6,
                n_users: 60,
                min_influencers: 6,
                ..WorldConfig::small()
            },
            slice_hours: 48,
        },
        refine_iters: 12,
        embed_dim: 8,
        embed_epochs: 1,
        ..StreamConfig::small()
    };
    let pipeline = StreamPipeline::new(base.clone().with_cache_dir(&dir));

    // Reference: a cold, uncached fold over all three slices.
    let (cold, _) = StreamPipeline::new(base).run(3).expect("cold run");
    let cold_digest = cold.content_digest();

    // Populate slices 0..2, then truncate the head topics artifact.
    pipeline.run(2).expect("prefix run");
    let victim = pipeline.artifact_path("stream-topics", 1).expect("victim path");
    let full = std::fs::metadata(&victim).expect("metadata").len();
    let file = std::fs::OpenOptions::new().write(true).open(&victim).expect("open");
    file.set_len(full / 2).expect("truncate");
    drop(file);

    // Extending to slice 2 demands topics@1: the torn frame reads as
    // a miss, topics@1 refolds from topics@0 + vectorize@1 (both
    // replayed hits), and every stage folds slice 2. Exactly that
    // cone — seven folds — executes.
    let (state, report) = pipeline.run(3).expect("healing run");
    assert_eq!(
        report.executed_folds(),
        vec![
            ("stream-collect", 2),
            ("stream-embed", 2),
            ("stream-events", 2),
            ("stream-preprocess", 2),
            ("stream-topics", 1),
            ("stream-topics", 2),
            ("stream-vectorize", 2),
        ],
        "healing must recompute exactly the corrupted cone: {report:?}"
    );
    let hit = |stage: &str, k: usize| {
        report.fold(stage, k).unwrap_or_else(|| panic!("no fold record for {stage}@{k}")).cache
    };
    assert_eq!(hit("stream-topics", 0), CacheStatus::Hit, "topics@0 must replay");
    assert_eq!(hit("stream-vectorize", 1), CacheStatus::Hit, "vectorize@1 must replay");
    assert!(
        report.fold("stream-collect", 0).is_none(),
        "collect@0 is outside the demanded cone and must not even be probed"
    );
    assert_eq!(state.content_digest(), cold_digest, "healed fold must equal cold");

    // The refold healed the cache in place: fully warm, frame restored.
    let (_, healed) = pipeline.run(3).expect("healed run");
    assert_eq!(healed.executed(), 0);
    assert_eq!(std::fs::metadata(&victim).expect("metadata").len(), full);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn force_from_and_until_steer_the_executor() {
    let _guard = LOCK.lock().unwrap();
    baseline_digest();

    // `from`: everything before replays, the named stage onward
    // recomputes even though the cache is valid.
    let mut cfg = config();
    cfg.cache.from = Some("trending".into());
    let (_, report) = Pipeline::new(cfg).run_with_report().expect("from run");
    for stage in UPSTREAM {
        assert_eq!(status_of(&report, stage), CacheStatus::Hit);
    }
    for stage in ["trending", "correlation", "features"] {
        assert_eq!(status_of(&report, stage), CacheStatus::Forced);
    }

    // `until`: later stages are skipped outright; the artifact set
    // holds only the materialized prefix.
    let mut cfg = config();
    cfg.cache.until = Some("preprocess".into());
    let (artifacts, report) = Pipeline::new(cfg).execute().expect("until run");
    assert!(artifacts.contains("collect") && artifacts.contains("preprocess"));
    assert!(!artifacts.contains("topics") && !artifacts.contains("features"));
    for stage in
        ["topics", "events", "embeddings", "trending", "correlation", "features", "patterns"]
    {
        assert_eq!(status_of(&report, stage), CacheStatus::Skipped);
    }

    // `force`: every stage recomputes; output still bit-identical.
    let mut cfg = config();
    cfg.cache.force = true;
    let (out, report) = Pipeline::new(cfg).run_with_report().expect("forced run");
    assert!(report.stages.iter().all(|s| s.cache == CacheStatus::Forced));
    assert_eq!(out.content_digest(), baseline_digest());
}
