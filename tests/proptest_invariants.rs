//! Cross-crate property tests on pipeline invariants.

use newsdiff::core::features::{follower_bin, metadata_vector, METADATA_DIM};
use newsdiff::embed::{doc_embedding, AverageStrategy, WordVectors};
use newsdiff::neural::metrics::ConfusionMatrix;
use newsdiff::synth::bucket_count;
use newsdiff::text::{preprocess_event_detection, preprocess_topic_modeling};
use newsdiff::vectorize::{DtmBuilder, Weighting};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #[test]
    fn preprocessing_never_panics_and_never_emits_whitespace(text in ".{0,300}") {
        for tok in preprocess_topic_modeling(&text) {
            prop_assert!(!tok.chars().any(char::is_whitespace));
            prop_assert!(!tok.is_empty());
        }
        for tok in preprocess_event_detection(&text) {
            prop_assert!(!tok.chars().any(char::is_whitespace));
            prop_assert!(!tok.is_empty());
        }
    }

    #[test]
    fn ed_tokens_are_lowercase(text in "[A-Za-z #@.!?]{0,200}") {
        for tok in preprocess_event_detection(&text) {
            prop_assert_eq!(tok.clone(), tok.to_lowercase());
        }
    }

    #[test]
    fn bucket_encoding_total_and_monotone(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_count(lo) <= bucket_count(hi));
        prop_assert!(bucket_count(a) <= 2);
    }

    #[test]
    fn metadata_vector_is_wellformed(followers in 0u64..10_000_000, ts in 0u64..2_000_000_000) {
        let v = metadata_vector(followers, ts);
        prop_assert_eq!(v.len(), METADATA_DIM);
        // exactly one follower bin hot
        let hot: f64 = v[..7].iter().sum();
        prop_assert!((hot - 1.0).abs() < 1e-12);
        prop_assert_eq!(v[follower_bin(followers)], 1.0);
        // day component normalized
        prop_assert!((0.0..=1.0).contains(&v[7]));
    }

    #[test]
    fn tfidf_normalized_rows_unit_or_zero(
        docs in prop::collection::vec(
            prop::collection::vec("[a-f]{1,3}", 1..10),
            1..12
        )
    ) {
        let dtm = DtmBuilder::new().build(&docs);
        let a = dtm.weighted(Weighting::TfIdfNormalized);
        for i in 0..a.rows() {
            let n = a.row(i).norm2();
            prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-9, "row {} norm {}", i, n);
        }
    }

    #[test]
    fn doc_embedding_bounded_by_inputs(
        tokens in prop::collection::vec("[a-d]", 0..10),
        seed in 0u64..100
    ) {
        let mut wv = WordVectors::new(4);
        wv.insert("a", &[1.0, 0.0, 0.0, 0.0]);
        wv.insert("b", &[0.0, 1.0, 0.0, 0.0]);
        let emb = doc_embedding(&wv, &tokens, AverageStrategy::RandomForMissing, &HashMap::new(), seed);
        prop_assert_eq!(emb.len(), 4);
        // Averaging vectors bounded by 1 keeps every component in [-1, 1].
        prop_assert!(emb.iter().all(|v| v.abs() <= 1.0 + 1e-12));
    }

    #[test]
    fn average_accuracy_bounds(labels in prop::collection::vec(0usize..3, 1..40),
                               preds in prop::collection::vec(0usize..3, 1..40)) {
        let n = labels.len().min(preds.len());
        let cm = ConfusionMatrix::from_labels(3, &labels[..n], &preds[..n]);
        let avg = cm.average_accuracy();
        prop_assert!((0.0..=1.0).contains(&avg));
        prop_assert!(avg >= cm.accuracy() - 1e-12, "Eq.17 average accuracy dominates plain accuracy for k=3");
    }
}
