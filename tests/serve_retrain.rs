//! Reload-with-retrain: `POST /admin/reload {"run_dir": ...}` replays
//! the staged pipeline from its artifact cache, refits the served
//! model, hot-swaps the new checkpoint, and surfaces the per-stage
//! report on `GET /metrics`.

use newsdiff::core::checkpoint::save_checkpoint;
use newsdiff::core::features::DatasetVariant;
use newsdiff::core::pipeline::{Pipeline, PipelineConfig};
use newsdiff::core::predict::{NetworkKind, PredictConfig, Target};
use newsdiff::serve::{
    Client, ModelSpec, Registry, RetrainModel, RetrainSpec, ServeConfig, Server,
};
use newsdiff::store::Database;
use serde_json::json;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("ndrt-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&p).ok();
    p
}

/// A fast retrain protocol: a few epochs are enough to produce a new
/// checkpoint; model quality is covered by the end-to-end suite.
fn predict_config() -> PredictConfig {
    PredictConfig {
        batch_size: 512,
        max_epochs: 3,
        early_stopping: None,
        val_fraction: 0.2,
        seed: 7,
    }
}

#[test]
fn reload_with_run_dir_retrains_and_swaps_from_the_artifact_cache() {
    let db_dir = tmpdir("retrain-db");
    let run_dir = PipelineConfig::shared_run_dir();
    let pipeline_config = PipelineConfig::small().with_cache_dir(run_dir.clone());

    // Populate the run cache and discover the feature width, exactly
    // as an offline training job would.
    let output = Pipeline::new(pipeline_config.clone()).run().expect("cold run");
    let dataset = output.dataset(DatasetVariant::A1, 11);
    assert!(!dataset.is_empty());
    let dim = dataset.x.cols();

    // Seed checkpoint version 1.
    {
        let mut db = Database::open(&db_dir).expect("open db");
        let network = NetworkKind::Mlp1.build(dim, 7);
        let v = save_checkpoint(&mut db, "likes", &network).expect("seed checkpoint");
        assert_eq!(v, 1);
    }

    let spec = ModelSpec::new("likes", dim, move || NetworkKind::Mlp1.build(dim, 7));
    let registry = Registry::load(&db_dir, vec![spec], 2).expect("registry");
    let config = ServeConfig {
        retrain: Some(RetrainSpec {
            pipeline: pipeline_config,
            variant: DatasetVariant::A1,
            predict: predict_config(),
            models: vec![RetrainModel {
                name: "likes".to_string(),
                kind: NetworkKind::Mlp1,
                target: Target::Likes,
            }],
            dataset_seed: 11,
        }),
        ..ServeConfig::default()
    };
    let server = Server::start(config, registry).expect("start server");
    let addr = server.addr();

    let mut client = Client::connect(addr).expect("connect");
    let res = client
        .post_json("/admin/reload", &json!({"run_dir": run_dir.to_string_lossy().to_string()}))
        .expect("reload");
    assert_eq!(res.status, 200, "{}", String::from_utf8_lossy(&res.body));
    let body: serde_json::Value = serde_json::from_slice(&res.body).expect("json body");

    // The retrained model hot-swapped 1 -> 2.
    let swapped = body["swapped"].as_array().expect("swapped list");
    assert_eq!(swapped.len(), 1);
    assert_eq!(swapped[0]["model"].as_str(), Some("likes"));
    assert_eq!(swapped[0]["from"].as_u64(), Some(1));
    assert_eq!(swapped[0]["to"].as_u64(), Some(2));

    // The pipeline section reports all nine stages; the run went
    // through the pre-populated cache, so nothing re-executed.
    let pipeline = &body["pipeline"];
    assert_eq!(pipeline["stages"].as_array().map(Vec::len), Some(9));
    assert_eq!(pipeline["executed"].as_u64(), Some(0), "warm cache must replay every stage");
    assert_eq!(pipeline["replayed"].as_u64(), Some(9));

    // The reload reports the mined pattern catalog it loaded.
    assert!(body["patterns"]["cataloged"].as_u64().unwrap_or(0) > 0, "{body}");
    assert_eq!(body["patterns"]["planted"].as_u64(), Some(5));

    // The per-stage report is now live on /metrics.
    let metrics = client.get("/metrics").expect("metrics");
    let text = String::from_utf8_lossy(&metrics.body).to_string();
    for gauge in
        ["nd_pipeline_stage_wall_ms", "nd_pipeline_stage_cache_hit", "nd_pipeline_artifact_bytes"]
    {
        assert!(text.contains(gauge), "missing {gauge} in:\n{text}");
    }
    assert!(text.contains("nd_pipeline_stage_cache_hit{stage=\"features\"} 1"));
    assert!(text.contains("nd_pipeline_stage_cache_hit{stage=\"patterns\"} 1"));
    assert!(text.contains("nd_patterns_catalog_size"), "{text}");
    assert!(text.contains("nd_patterns_catalog_patterns{category=\"churn\"}"), "{text}");

    // The mined catalog is now queryable.
    let patterns = client.get("/patterns?limit=5").expect("patterns");
    assert_eq!(patterns.status, 200);
    let pbody: serde_json::Value = serde_json::from_slice(&patterns.body).expect("patterns json");
    assert!(pbody["total_patterns"].as_u64().unwrap_or(0) > 0, "{pbody}");
    assert!(pbody["returned"].as_u64().unwrap_or(0) <= 5);
    let first = &pbody["patterns"][0];
    assert!(first["id"].as_str().is_some(), "{pbody}");
    assert!(first["pattern"].as_str().is_some());

    // Category filtering is validated and applied.
    let churn = client.get("/patterns?category=churn&limit=3").expect("churn patterns");
    assert_eq!(churn.status, 200);
    let cbody: serde_json::Value = serde_json::from_slice(&churn.body).expect("churn json");
    for p in cbody["patterns"].as_array().expect("patterns array") {
        assert_eq!(p["category"].as_str(), Some("churn"), "{cbody}");
    }
    let bogus = client.get("/patterns?category=bogus").expect("bogus category");
    assert_eq!(bogus.status, 400);

    // A plain reload (no run_dir) still answers and finds nothing new.
    let res = client.post_json("/admin/reload", &json!({})).expect("plain reload");
    assert_eq!(res.status, 200);

    server.shutdown();
}

#[test]
fn reload_with_run_dir_requires_a_retrain_spec() {
    let db_dir = tmpdir("retrain-unconfigured");
    {
        let mut db = Database::open(&db_dir).expect("open db");
        let network = NetworkKind::Mlp1.build(8, 7);
        save_checkpoint(&mut db, "likes", &network).expect("seed checkpoint");
    }
    let spec = ModelSpec::new("likes", 8, || NetworkKind::Mlp1.build(8, 7));
    let registry = Registry::load(&db_dir, vec![spec], 2).expect("registry");
    let server = Server::start(ServeConfig::default(), registry).expect("start server");

    let mut client = Client::connect(server.addr()).expect("connect");
    let res = client
        .post_json("/admin/reload", &json!({"run_dir": "/nonexistent"}))
        .expect("reload");
    assert_eq!(res.status, 400);

    // No retrain has run, so there is no catalog to serve yet — and
    // the route still rejects wrong methods rather than 404ing them.
    let empty = client.get("/patterns").expect("patterns without catalog");
    assert_eq!(empty.status, 404);
    let wrong_method = client.post_json("/patterns", &json!({})).expect("post patterns");
    assert_eq!(wrong_method.status, 405);

    server.shutdown();
}
