//! End-to-end serving test: train a model, checkpoint it into the
//! store, boot the HTTP server on an ephemeral port, and verify that
//! concurrent clients receive predictions bit-identical to offline
//! inference — across cache hits, micro-batched passes, overload
//! shedding, and a hot model swap happening mid-traffic.

use newsdiff::linalg::vecops::argmax;
use newsdiff::linalg::Mat;
use newsdiff::neural::{Network, Sgd};
use newsdiff::serve::{BatchConfig, Client, ModelSpec, Registry, ServeConfig, Server};
use newsdiff::store::Database;
use serde_json::json;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use newsdiff::core::checkpoint::save_checkpoint;
use newsdiff::core::predict::build_mlp;

const DIM: usize = 24;

fn tmpdir(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("ndrt-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&p).ok();
    p
}

/// A small but genuinely trained model: synthetic features whose
/// class depends on the sign structure of the row.
fn train_model(seed: u64) -> Network {
    let x = Mat::random_normal(96, DIM, 0.0, 1.0, seed);
    let y: Vec<usize> = (0..x.rows())
        .map(|i| {
            let s: f64 = x.row(i).iter().sum();
            if s < -1.0 {
                0
            } else if s < 1.0 {
                1
            } else {
                2
            }
        })
        .collect();
    let mut network = build_mlp(DIM, seed);
    let mut opt = Sgd::new(0.1);
    for _ in 0..20 {
        network.train_batch(&x, &y, &mut opt);
    }
    network
}

fn probe_rows(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let m = Mat::random_normal(n, DIM, 0.0, 1.0, seed);
    (0..n).map(|i| m.row(i).to_vec()).collect()
}

fn boot(dir: &PathBuf, config: ServeConfig) -> (Server, Arc<Network>) {
    let trained = train_model(7);
    {
        let mut db = Database::open(dir).unwrap();
        save_checkpoint(&mut db, "likes", &trained).unwrap();
    }
    let spec = ModelSpec::new("likes", DIM, || build_mlp(DIM, 0));
    let registry = Registry::load(dir, vec![spec], 2).unwrap();
    (Server::start(config, registry).unwrap(), Arc::new(trained))
}

#[test]
fn concurrent_clients_get_bit_identical_predictions() {
    let dir = tmpdir("bitident");
    let (server, trained) = boot(&dir, ServeConfig::default());
    let addr = server.addr();

    let clients: Vec<_> = (0..4)
        .map(|c| {
            let trained = Arc::clone(&trained);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let rows = probe_rows(12, 100 + c);
                // Mix of single and batch requests per client.
                for (i, row) in rows.iter().enumerate() {
                    let offline = trained
                        .predict_batch(&Mat::from_rows(std::slice::from_ref(row)).unwrap());
                    let expected: Vec<f64> = offline.row(0).to_vec();
                    let response = if i % 3 == 0 {
                        client
                            .post_json("/predict", &json!({"rows": vec![row.clone()]}))
                            .unwrap()
                    } else {
                        client.post_json("/predict", &json!({"features": row})).unwrap()
                    };
                    assert_eq!(response.status, 200, "{}", response.text());
                    let body = response.json().unwrap();
                    let scores = if i % 3 == 0 {
                        body["predictions"][0]["scores"].clone()
                    } else {
                        body["scores"].clone()
                    };
                    let served: Vec<f64> = scores
                        .as_array()
                        .unwrap()
                        .iter()
                        .map(|v| v.as_f64().unwrap())
                        .collect();
                    assert_eq!(
                        served, expected,
                        "served scores must be bit-identical to offline inference"
                    );
                    let class = if i % 3 == 0 {
                        body["predictions"][0]["class"].as_u64()
                    } else {
                        body["class"].as_u64()
                    };
                    assert_eq!(class, Some(argmax(&expected).unwrap() as u64));
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    let metrics = server.metrics();
    assert!(metrics.batches.get() > 0, "micro-batcher must have run");
    assert_eq!(metrics.predictions.get(), 4 * 12);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_swap_mid_traffic_is_never_torn() {
    let dir = tmpdir("hotswap");
    let (server, v1) = boot(&dir, ServeConfig::default());
    let addr = server.addr();

    let v2 = Arc::new(train_model(99));
    let stop = Arc::new(AtomicBool::new(false));

    // Traffic threads: every response must be *exactly* version 1's
    // output or *exactly* version 2's output, tagged with the matching
    // version number — never a mixture, never a torn read.
    let workers: Vec<_> = (0..3)
        .map(|w| {
            let (v1, v2, stop) = (Arc::clone(&v1), Arc::clone(&v2), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let rows = probe_rows(6, 500 + w);
                let mut seen_v2 = false;
                while !stop.load(Ordering::SeqCst) {
                    for row in &rows {
                        let response =
                            client.post_json("/predict", &json!({"features": row})).unwrap();
                        assert_eq!(response.status, 200, "{}", response.text());
                        let body = response.json().unwrap();
                        let served: Vec<f64> = body["scores"]
                            .as_array()
                            .unwrap()
                            .iter()
                            .map(|v| v.as_f64().unwrap())
                            .collect();
                        let input = Mat::from_rows(std::slice::from_ref(row)).unwrap();
                        let version = body["version"].as_u64().unwrap();
                        let expected = match version {
                            1 => v1.predict_batch(&input),
                            2 => {
                                seen_v2 = true;
                                v2.predict_batch(&input)
                            }
                            other => panic!("impossible version {other}"),
                        };
                        assert_eq!(
                            served,
                            expected.row(0).to_vec(),
                            "response mixed versions during hot swap"
                        );
                    }
                }
                seen_v2
            })
        })
        .collect();

    // Let traffic flow on v1, then checkpoint v2 and swap mid-flight.
    std::thread::sleep(Duration::from_millis(100));
    {
        let mut db = Database::open(&dir).unwrap();
        save_checkpoint(&mut db, "likes", &v2).unwrap();
    }
    let mut admin = Client::connect(addr).unwrap();
    let reload = admin.post_json("/admin/reload", &json!({})).unwrap();
    assert_eq!(reload.status, 200);
    assert_eq!(reload.json().unwrap()["swapped"][0]["to"].as_u64(), Some(2));

    // Keep traffic flowing on v2 for a bit, then stop.
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::SeqCst);
    let mut any_seen_v2 = false;
    for w in workers {
        any_seen_v2 |= w.join().unwrap();
    }
    assert!(any_seen_v2, "swap must become visible to traffic");
    assert_eq!(server.metrics().model_swaps.get(), 1);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overload_sheds_with_503_and_inflight_complete() {
    let dir = tmpdir("overload");
    // A tiny queue and a slow batch window force rejections under
    // concurrent fire.
    let config = ServeConfig {
        batch: BatchConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(30),
            queue_capacity: 8,
            workers: 1,
        },
        cache_rows: 0, // every request must take the batcher path
        ..ServeConfig::default()
    };
    let (server, trained) = boot(&dir, config);
    let addr = server.addr();

    let shooters: Vec<_> = (0..8)
        .map(|s| {
            let trained = Arc::clone(&trained);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let rows = probe_rows(8, 900 + s);
                let mut rejected = 0usize;
                for row in &rows {
                    let response = client
                        .post_json("/predict", &json!({"rows": vec![row.clone(); 3]}))
                        .unwrap();
                    match response.status {
                        200 => {
                            let body = response.json().unwrap();
                            let offline = trained
                                .predict_batch(&Mat::from_rows(std::slice::from_ref(row)).unwrap());
                            for p in body["predictions"].as_array().unwrap() {
                                let served: Vec<f64> = p["scores"]
                                    .as_array()
                                    .unwrap()
                                    .iter()
                                    .map(|v| v.as_f64().unwrap())
                                    .collect();
                                assert_eq!(served, offline.row(0).to_vec());
                            }
                        }
                        503 => {
                            // Retry-After is derived from queue depth
                            // and drain rate — any positive integer
                            // number of seconds is valid.
                            let retry: u64 = response
                                .header("retry-after")
                                .and_then(|v| v.parse().ok())
                                .expect("503 must carry an integer Retry-After");
                            assert!(
                                (1..=30).contains(&retry),
                                "Retry-After out of range: {retry}"
                            );
                            rejected += 1;
                        }
                        other => panic!("unexpected status {other}: {}", response.text()),
                    }
                }
                rejected
            })
        })
        .collect();

    let rejected: usize = shooters.into_iter().map(|s| s.join().unwrap()).sum();
    let metrics = server.metrics();
    assert_eq!(
        rejected as u64,
        metrics.overload_rejections.get(),
        "every rejection surfaces as exactly one 503"
    );
    assert!(rejected > 0, "queue_capacity=8 under 8x8x3 rows must shed load");
    // Accepted requests all completed: accepted = total - rejected.
    assert_eq!(metrics.predictions.get(), (8 * 8 - rejected as u64) * 3);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn graceful_shutdown_answers_inflight_work() {
    let dir = tmpdir("drain");
    let config = ServeConfig {
        batch: BatchConfig {
            max_batch: 64,
            // A long window: requests are deliberately in-flight when
            // shutdown begins.
            max_wait: Duration::from_millis(300),
            queue_capacity: 1024,
            workers: 1,
        },
        cache_rows: 0,
        ..ServeConfig::default()
    };
    let (server, trained) = boot(&dir, config);
    let addr = server.addr();

    let senders: Vec<_> = (0..4)
        .map(|s| {
            let trained = Arc::clone(&trained);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let row = probe_rows(1, 40 + s).remove(0);
                let response =
                    client.post_json("/predict", &json!({"features": row})).unwrap();
                assert_eq!(response.status, 200, "in-flight request dropped: {}", response.text());
                let offline =
                    trained.predict_batch(&Mat::from_rows(std::slice::from_ref(&row)).unwrap());
                let served: Vec<f64> = response.json().unwrap()["scores"]
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|v| v.as_f64().unwrap())
                    .collect();
                assert_eq!(served, offline.row(0).to_vec());
            })
        })
        .collect();

    // Give the requests time to be admitted into the 300ms batch
    // window, then shut down while they are still pending.
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();
    for s in senders {
        s.join().unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}
