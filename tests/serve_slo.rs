//! SLO-harness tests for the sharded serving layer: adversarial
//! clients (slow-loris, header floods) must be cut off without
//! stalling the accept loop or leaking connection slots, overload must
//! shed with a drain-rate-derived `Retry-After` while accepted work
//! always completes, and predictions must stay bit-identical to
//! offline inference across shard counts.

use newsdiff::core::predict::build_mlp;
use newsdiff::linalg::Mat;
use newsdiff::serve::loadgen::{boot_fixture, fixture_models, slow_loris};
use newsdiff::serve::shard::ShardConfig;
use newsdiff::serve::{BatchConfig, Client, ServeConfig};
use serde_json::json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmpdir(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("ndslo-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn probe_rows(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let m = Mat::random_normal(n, dim, 0.0, 1.0, seed);
    (0..n).map(|i| m.row(i).to_vec()).collect()
}

/// Reads the `nd_serve_open_connections` gauge off `/metrics`.
fn open_connections(addr: std::net::SocketAddr) -> u64 {
    let mut client = Client::connect(addr).unwrap();
    let response = client.get("/metrics").unwrap();
    assert_eq!(response.status, 200);
    response
        .text()
        .lines()
        .find_map(|l| l.strip_prefix("nd_serve_open_connections "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(u64::MAX)
}

#[test]
fn slow_loris_is_cut_off_without_stalling_serving() {
    let dir = tmpdir("loris");
    let config = ServeConfig {
        shard: ShardConfig { shards: 2, ..ShardConfig::default() },
        // Short head deadline so the test ends quickly; production
        // default is 5s.
        head_deadline: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    const DIM: usize = 8;
    let server = boot_fixture(&dir, 2, DIM, config).unwrap();
    let addr = server.addr();

    // Adversary: 6 connections trickling one byte at a time, held for
    // well past the head deadline.
    let loris =
        std::thread::spawn(move || slow_loris(addr, 6, Duration::from_millis(1200)));

    // Healthy traffic keeps flowing at full rate the whole time.
    let mut client = Client::connect(addr).unwrap();
    let rows = probe_rows(4, DIM, 42);
    let deadline = Instant::now() + Duration::from_millis(1200);
    let mut served = 0u32;
    while Instant::now() < deadline {
        let response =
            client.post_json("/predict", &json!({"model": "m0", "rows": rows})).unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
        served += 1;
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(served >= 10, "healthy client must keep being served: {served}");

    let report = loris.join().unwrap();
    assert_eq!(report.opened, 6, "all adversarial connections opened");
    assert_eq!(
        report.dropped, report.opened,
        "every slow-loris connection must be cut off at the head deadline"
    );

    // No leaked connection slots: once the adversaries are gone, the
    // gauge settles back to just this test's own probes.
    drop(client);
    let settle = Instant::now() + Duration::from_secs(5);
    let mut last = u64::MAX;
    while Instant::now() < settle {
        last = open_connections(addr);
        if last <= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(last <= 1, "loris slots must be reclaimed, gauge stuck at {last}");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn header_flood_is_rejected_and_slot_reclaimed() {
    let dir = tmpdir("flood");
    let config = ServeConfig {
        shard: ShardConfig { shards: 2, ..ShardConfig::default() },
        ..ServeConfig::default()
    };
    const DIM: usize = 8;
    let server = boot_fixture(&dir, 1, DIM, config).unwrap();
    let addr = server.addr();

    // Raw connection spraying headers far past the 16 KiB head budget.
    let mut flood = TcpStream::connect(addr).unwrap();
    flood.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    let filler = format!("X-Flood: {}\r\n", "z".repeat(60));
    let mut sent_any_error = false;
    for _ in 0..2000 {
        if flood.write_all(filler.as_bytes()).is_err() {
            // Server already reset us mid-flood — also a pass.
            sent_any_error = true;
            break;
        }
    }
    // The server must answer 413 (or have reset the stream) and close.
    flood.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reply = Vec::new();
    let got = flood.read_to_end(&mut reply);
    let text = String::from_utf8_lossy(&reply);
    assert!(
        sent_any_error || got.is_err() || text.starts_with("HTTP/1.1 413"),
        "flood must be rejected, got: {text:.120}"
    );

    // The listener keeps serving fresh clients afterwards.
    let mut client = Client::connect(addr).unwrap();
    let rows = probe_rows(2, DIM, 9);
    let response =
        client.post_json("/predict", &json!({"model": "m0", "rows": rows})).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overload_retry_after_is_dynamic_and_accepted_work_completes() {
    let dir = tmpdir("retryafter");
    // Tiny queue + slow batch window to force shedding.
    let config = ServeConfig {
        batch: BatchConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(40),
            queue_capacity: 8,
            workers: 1,
        },
        cache_rows: 0,
        shard: ShardConfig { shards: 2, ..ShardConfig::default() },
        ..ServeConfig::default()
    };
    const DIM: usize = 12;
    let server = boot_fixture(&dir, 2, DIM, config).unwrap();
    let addr = server.addr();

    let workers: Vec<_> = (0..8)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let rows = probe_rows(6, DIM, 300 + c);
                let mut ok = 0u64;
                let mut shed = 0u64;
                for _ in 0..6 {
                    let response = client
                        .post_json(
                            "/predict",
                            &json!({"model": format!("m{}", c % 2), "rows": rows}),
                        )
                        .unwrap();
                    match response.status {
                        200 => ok += 1,
                        503 => {
                            let retry: u64 = response
                                .header("retry-after")
                                .and_then(|v| v.parse().ok())
                                .expect("503 must carry an integer Retry-After");
                            assert!(
                                (1..=30).contains(&retry),
                                "Retry-After out of range: {retry}"
                            );
                            // The JSON body mirrors the header.
                            let body = response.json().unwrap();
                            assert_eq!(body["retry_after_s"].as_u64(), Some(retry));
                            assert!(body["queued_rows"].as_u64().is_some(), "{body}");
                            shed += 1;
                        }
                        other => panic!("unexpected status {other}: {}", response.text()),
                    }
                }
                (ok, shed)
            })
        })
        .collect();

    let mut total_ok = 0;
    let mut total_shed = 0;
    for w in workers {
        let (ok, shed) = w.join().unwrap();
        total_ok += ok;
        total_shed += shed;
    }
    assert!(total_shed > 0, "queue_capacity=8 under 8x6x6 rows must shed load");
    // Every request either completed with real scores or was shed —
    // nothing vanished in the queue.
    assert_eq!(total_ok + total_shed, 8 * 6);

    let metrics = server.metrics();
    assert_eq!(metrics.overload_rejections.get(), total_shed);
    // Accepted rows all produced predictions.
    assert_eq!(metrics.predictions.get(), total_ok * 6);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn predictions_bit_identical_across_shard_counts() {
    const DIM: usize = 16;
    const MODELS: usize = 3;
    let rows = probe_rows(10, DIM, 77);
    let x = Mat::from_rows(&rows).unwrap();

    // Offline ground truth: the exact networks boot_fixture checkpoints.
    let offline: Vec<Vec<Vec<f64>>> = (0..MODELS)
        .map(|i| {
            let net = build_mlp(DIM, 1000 + i as u64);
            let scores = net.predict_batch(&x);
            (0..scores.rows()).map(|r| scores.row(r).to_vec()).collect()
        })
        .collect();

    for shards in [1usize, 2, 8] {
        let dir = tmpdir(&format!("bitident{shards}"));
        let config = ServeConfig {
            shard: ShardConfig { shards, ..ShardConfig::default() },
            ..ServeConfig::default()
        };
        let server = boot_fixture(&dir, MODELS, DIM, config).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        for (i, model) in fixture_models(MODELS).iter().enumerate() {
            let response = client
                .post_json("/predict", &json!({"model": model, "rows": rows}))
                .unwrap();
            assert_eq!(response.status, 200, "{}", response.text());
            let body = response.json().unwrap();
            let served: Vec<Vec<f64>> = body["predictions"]
                .as_array()
                .unwrap()
                .iter()
                .map(|p| {
                    p["scores"]
                        .as_array()
                        .unwrap()
                        .iter()
                        .map(|v| v.as_f64().unwrap())
                        .collect()
                })
                .collect();
            assert_eq!(
                served, offline[i],
                "shards={shards} model={model}: served scores must be \
                 bit-identical to offline predict_batch"
            );
        }
        drop(client);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
