//! Streaming refresh loop, end to end: `POST /admin/reload
//! {"advance_stream": true}` folds one firehose slice per call
//! through the incremental DAG (cached prefix replays from disk),
//! retrains the served model on the new head state, hot-swaps the
//! checkpoint, and surfaces per-slice fold/staleness gauges on
//! `GET /metrics`.

use newsdiff::core::checkpoint::save_checkpoint;
use newsdiff::core::features::DatasetVariant;
use newsdiff::core::incremental::StreamConfig;
use newsdiff::core::predict::{NetworkKind, PredictConfig, Target};
use newsdiff::serve::{
    Client, ModelSpec, Registry, RetrainModel, ServeConfig, Server, StreamRetrainSpec,
};
use newsdiff::store::Database;
use newsdiff::synth::{FirehoseConfig, WorldConfig};
use serde_json::json;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("ndstream-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&p).ok();
    p
}

const EMBED_DIM: usize = 16;

/// An 8-day world in 48-hour slices (4 slices): big enough for MABED
/// to find bursts and the projections to correlate them, small enough
/// that one advance folds in well under a second.
fn stream_spec(cache_dir: PathBuf) -> StreamRetrainSpec {
    StreamRetrainSpec {
        stream: StreamConfig {
            firehose: FirehoseConfig {
                world: WorldConfig {
                    days: 8,
                    n_users: 150,
                    min_influencers: 15,
                    ..WorldConfig::small()
                },
                slice_hours: 48,
            },
            refine_iters: 20,
            embed_dim: EMBED_DIM,
            embed_epochs: 2,
            ..StreamConfig::small()
        }
        .with_cache_dir(cache_dir),
        variant: DatasetVariant::A1,
        predict: PredictConfig {
            batch_size: 512,
            max_epochs: 3,
            early_stopping: None,
            val_fraction: 0.2,
            seed: 7,
        },
        models: vec![RetrainModel {
            name: "likes".to_string(),
            kind: NetworkKind::Mlp1,
            target: Target::Likes,
        }],
        dataset_seed: 11,
        trending_threshold: 0.3,
        correlation_threshold: 0.3,
    }
}

#[test]
fn advance_stream_folds_retrains_and_swaps_slice_by_slice() {
    let db_dir = tmpdir("stream-db");
    let cache_dir = tmpdir("stream-cache");
    let spec = stream_spec(cache_dir.clone());
    let horizon = spec.stream.firehose.n_slices();
    assert_eq!(horizon, 4);

    // Seed checkpoint version 1 so the registry has something to serve
    // before the first slice ever arrives.
    {
        let mut db = Database::open(&db_dir).expect("open db");
        let network = NetworkKind::Mlp1.build(EMBED_DIM, 7);
        save_checkpoint(&mut db, "likes", &network).expect("seed checkpoint");
    }
    let model_spec = ModelSpec::new("likes", EMBED_DIM, || NetworkKind::Mlp1.build(EMBED_DIM, 7));
    let registry = Registry::load(&db_dir, vec![model_spec], 2).expect("registry");
    let config = ServeConfig { stream: Some(spec), ..ServeConfig::default() };
    let server = Server::start(config, registry).expect("start server");

    let mut client = Client::connect(server.addr()).expect("connect");
    let mut total_trained = 0u64;
    for k in 0..horizon {
        let res = client
            .post_json("/admin/reload", &json!({"advance_stream": true}))
            .expect("advance");
        assert_eq!(res.status, 200, "{}", String::from_utf8_lossy(&res.body));
        let body: serde_json::Value = serde_json::from_slice(&res.body).expect("json body");
        let stream = &body["stream"];
        assert_eq!(stream["head"].as_u64(), Some(k as u64 + 1));
        assert_eq!(stream["horizon"].as_u64(), Some(horizon as u64));
        // Each advance folds exactly the six stages of the new slice;
        // the prefix replays from the artifact cache.
        assert_eq!(stream["executed"].as_u64(), Some(6), "{stream}");
        assert_eq!(stream["slices_polled"].as_u64(), Some(1), "lazy poll: one new slice");
        for fold in stream["folds"].as_array().expect("folds") {
            if fold["cache"].as_str() == Some("miss") {
                assert_eq!(fold["slice"].as_u64(), Some(k as u64), "{fold}");
            }
        }
        total_trained += stream["trained"].as_u64().unwrap_or(0);
    }
    assert!(total_trained >= 1, "at least one advance must yield a trainable dataset");

    // The retrained checkpoints hot-swapped: the serving version moved
    // past the seeded version 1.
    let models = client.get("/models").expect("models");
    let mbody: serde_json::Value = serde_json::from_slice(&models.body).expect("models json");
    let version = mbody["models"][0]["version"].as_u64().expect("version");
    assert!(version > 1, "seed version must have been superseded: {mbody}");

    // Per-slice gauges are live on /metrics.
    let metrics = client.get("/metrics").expect("metrics");
    let text = String::from_utf8_lossy(&metrics.body).to_string();
    assert!(text.contains(&format!("nd_stream_head_slice {horizon}")), "{text}");
    assert!(text.contains("nd_stream_staleness_ms"), "{text}");
    assert!(text.contains("nd_stream_dataset_rows"), "{text}");
    let last = horizon - 1;
    for stage in ["stream-collect", "stream-topics", "stream-embed"] {
        let gauge = format!("nd_stream_fold_wall_ms{{stage=\"{stage}\",slice=\"{last}\"}}");
        assert!(text.contains(&gauge), "missing {gauge} in:\n{text}");
    }
    assert!(
        text.contains(&format!("nd_stream_fold_cache_hit{{stage=\"stream-topics\",slice=\"{last}\"}} 0")),
        "the head fold executed, it must not read as a cache hit:\n{text}"
    );

    // The firehose is finite: advancing past the horizon is a client
    // error, not a crash.
    let res = client
        .post_json("/admin/reload", &json!({"advance_stream": true}))
        .expect("exhausted advance");
    assert_eq!(res.status, 400, "{}", String::from_utf8_lossy(&res.body));

    // A server without a stream spec rejects the verb outright.
    server.shutdown();
    std::fs::remove_dir_all(&db_dir).ok();
    std::fs::remove_dir_all(&cache_dir).ok();
}

#[test]
fn advance_stream_requires_a_stream_spec() {
    let db_dir = tmpdir("stream-unconfigured");
    {
        let mut db = Database::open(&db_dir).expect("open db");
        save_checkpoint(&mut db, "likes", &NetworkKind::Mlp1.build(8, 7)).expect("seed");
    }
    let spec = ModelSpec::new("likes", 8, || NetworkKind::Mlp1.build(8, 7));
    let registry = Registry::load(&db_dir, vec![spec], 2).expect("registry");
    let server = Server::start(ServeConfig::default(), registry).expect("start server");

    let mut client = Client::connect(server.addr()).expect("connect");
    let res = client
        .post_json("/admin/reload", &json!({"advance_stream": true}))
        .expect("reload");
    assert_eq!(res.status, 400);

    server.shutdown();
    std::fs::remove_dir_all(&db_dir).ok();
}
