//! Integration: collection loop → document store → preprocessing,
//! i.e. the storage-backed path of paper §4.1–4.2 across `nd-synth`,
//! `nd-core::collect` and `nd-store`.

use newsdiff::core::collect::collect_world;
use newsdiff::store::{Database, Filter};
use newsdiff::synth::{World, WorldConfig};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("ndit-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn tiny_world() -> World {
    World::generate(WorldConfig {
        days: 3,
        n_users: 60,
        min_influencers: 8,
        ..WorldConfig::small()
    })
}

#[test]
fn collected_store_survives_restart_with_identical_query_results() {
    let world = tiny_world();
    let dir = tmpdir("restart");
    let before: usize;
    {
        let mut db = Database::open(&dir).unwrap();
        collect_world(&world, &mut db).unwrap();
        before = db
            .get_collection("tweets")
            .unwrap()
            .count(&Filter::range("likes", Some(100.0), Some(1000.0)));
        db.persist().unwrap();
    }
    {
        let db = Database::open(&dir).unwrap();
        let after = db
            .get_collection("tweets")
            .unwrap()
            .count(&Filter::range("likes", Some(100.0), Some(1000.0)));
        assert_eq!(before, after);
        assert!(after > 0);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_round_trip_preserves_engagement_distribution() {
    let world = tiny_world();
    let dir = tmpdir("dist");
    let mut db = Database::open(&dir).unwrap();
    collect_world(&world, &mut db).unwrap();
    let tweets = db.get_collection("tweets").unwrap();

    // Table 2 buckets computed from the store must match the world's.
    let mut store_buckets = [0usize; 3];
    for doc in tweets.iter() {
        let likes = doc["likes"].as_u64().unwrap();
        store_buckets[newsdiff::synth::bucket_count(likes) as usize] += 1;
    }
    let mut world_buckets = [0usize; 3];
    for t in &world.tweets {
        world_buckets[newsdiff::synth::bucket_count(t.likes) as usize] += 1;
    }
    // Collection may drop <1% at page boundaries.
    for c in 0..3 {
        let diff = store_buckets[c].abs_diff(world_buckets[c]);
        assert!(
            diff * 100 <= world_buckets[c].max(100),
            "bucket {c}: store {} vs world {}",
            store_buckets[c],
            world_buckets[c]
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_preserves_query_results() {
    let world = tiny_world();
    let dir = tmpdir("compact");
    let filter = Filter::And(vec![
        Filter::contains("text", "the"),
        Filter::range("likes", Some(50.0), None),
    ]);
    let before: usize;
    {
        let mut db = Database::open(&dir).unwrap();
        collect_world(&world, &mut db).unwrap();
        before = db.get_collection("tweets").unwrap().count(&filter);
        db.compact().unwrap();
    }
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.get_collection("tweets").unwrap().count(&filter), before);
    std::fs::remove_dir_all(&dir).ok();
}
