//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the surface the WAL framing code uses:
//! [`BytesMut`] as a growable buffer with [`BufMut`] writes, and
//! [`Buf`] reads over `&[u8]`.

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Current readable slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics when `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads a little-endian `u32` and advances past it.
    ///
    /// # Panics
    /// Panics when fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32_le: buffer underflow");
        let c = self.chunk();
        let v = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian `u32` and advances past it.
    ///
    /// # Panics
    /// Panics when fewer than 4 bytes remain.
    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32: buffer underflow");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

/// Write sink for growable buffers.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// Appends bytes from a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut frame = BytesMut::with_capacity(16);
        frame.put_u32_le(5);
        frame.put_slice(b"hello");
        assert_eq!(frame.len(), 9);

        let mut buf: &[u8] = &frame;
        assert_eq!(buf.remaining(), 9);
        assert_eq!(buf.get_u32_le(), 5);
        assert_eq!(buf.chunk(), b"hello");
        buf.advance(5);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn peek_without_advance_matches_wal_usage() {
        // The WAL reads the length with `(&buf[..4]).get_u32_le()`
        // before deciding to advance; that pattern must work.
        let mut frame = BytesMut::new();
        frame.put_u32_le(0xDEAD_BEEF);
        let buf: &[u8] = &frame;
        let peeked = (&buf[..4]).get_u32_le();
        assert_eq!(peeked, 0xDEAD_BEEF);
        assert_eq!(buf.len(), 4, "peek must not consume");
    }
}
