//! Offline stand-in for `criterion`.
//!
//! Benchmarks run with `cargo bench` exactly like the real crate
//! (`harness = false` targets calling [`criterion_main!`]). Each
//! benchmark is timed over `sample_size` samples after a short
//! warm-up; mean / median / min wall-clock times are printed per
//! benchmark. There are no statistical regressions reports or HTML
//! output.
//!
//! When the `ND_BENCH_JSON` environment variable names a file, a JSON
//! summary `[{"name", "mean_ns", "median_ns", "min_ns", "samples"}]`
//! is appended for downstream tooling.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Collected timing for one benchmark.
#[derive(Debug, Clone)]
struct Record {
    name: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    samples: usize,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    records: Vec<Record>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, records: Vec::new() }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let rec = run_bench(name, self.sample_size, &mut f);
        self.records.push(rec);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    fn finalize(&mut self) {
        if self.records.is_empty() {
            return;
        }
        if let Ok(path) = std::env::var("ND_BENCH_JSON") {
            if !path.is_empty() {
                let mut out = String::from("[");
                for (i, r) in self.records.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"name\":\"{}\",\"mean_ns\":{:.1},\"median_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{}}}",
                        r.name.replace('"', "'"),
                        r.mean_ns,
                        r.median_ns,
                        r.min_ns,
                        r.samples
                    ));
                }
                out.push_str("]\n");
                use std::io::Write;
                if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path)
                {
                    let _ = f.write_all(out.as_bytes());
                }
            }
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.text);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let rec = run_bench(&full, samples, &mut |b: &mut Bencher| f(b, input));
        self.parent.records.push(rec);
        self
    }

    /// Runs a benchmark closure under this group's name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let rec = run_bench(&full, samples, &mut f);
        self.parent.records.push(rec);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id like `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { text: format!("{name}/{param}") }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { text: param.to_string() }
    }
}

/// Controls how per-iteration setup cost is amortised in
/// [`Bencher::iter_batched`]. The stand-in times every routine call
/// individually, so the variants only influence nothing but intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Times closures for one benchmark.
pub struct Bencher {
    /// Accumulated sample durations for the current run.
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then timed samples.
        black_box(routine());
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.target_samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_bench(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) -> Record {
    let mut b = Bencher { samples: Vec::with_capacity(samples), target_samples: samples };
    f(&mut b);
    let mut ns: Vec<f64> = b.samples.iter().map(|d| d.as_nanos() as f64).collect();
    if ns.is_empty() {
        ns.push(0.0);
    }
    ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = ns.iter().sum::<f64>() / ns.len() as f64;
    let median = ns[ns.len() / 2];
    let min = ns[0];
    println!(
        "bench {name:<48} mean {:>12}  median {:>12}  min {:>12}  ({} samples)",
        fmt_ns(mean),
        fmt_ns(median),
        fmt_ns(min),
        ns.len()
    );
    Record { name: name.to_string(), mean_ns: mean, median_ns: median, min_ns: min, samples: ns.len() }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group; both the simple list form and the
/// `name = ...; config = ...; targets = ...` form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            $crate::__finalize(&mut criterion);
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[doc(hidden)]
pub fn __finalize(c: &mut Criterion) {
    c.finalize();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(4);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.records[0].samples, 4);
    }

    #[test]
    fn group_and_batched_work() {
        let mut c = Criterion::default().sample_size(3);
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::new("sum", 8), &8usize, |b, &n| {
                b.iter_batched(|| vec![1u64; n], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
            });
            g.finish();
        }
        assert_eq!(c.records[0].name, "grp/sum/8");
        assert_eq!(c.records[0].samples, 2);
    }
}
