//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`,
//! [`Strategy`] with `prop_map`, range strategies over the numeric
//! primitives, simplified-regex string strategies (char classes, `.`,
//! `{m,n}` repetition), tuple strategies, and
//! `prop::collection::vec`. Inputs are generated from a deterministic
//! per-test seed; there is no shrinking — the failing input is printed
//! instead.

use std::ops::Range;

/// Deterministic SplitMix64 generator for input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (test name), deterministically.
    pub fn for_test(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `0` when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// `&str` strategies interpret a simplified regex: a sequence of atoms
/// (`.`, `[class]` with ranges, or a literal char) each optionally
/// followed by `{m}` / `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    enum Atom {
        Any,
        Class(Vec<char>),
        Literal(char),
    }

    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed class in pattern {pat:?}"));
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            for c in lo..=hi {
                                if let Some(c) = char::from_u32(c) {
                                    set.push(c);
                                }
                            }
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Atom::Class(set)
                }
                '\\' if i + 1 < chars.len() => {
                    i += 2;
                    Atom::Literal(chars[i - 1])
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed repetition in pattern {pat:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad repetition lower bound"),
                        b.trim().parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            } else {
                (1usize, 1usize)
            };
            let count = lo + rng.next_below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                match &atom {
                    Atom::Any => {
                        // Printable ASCII.
                        out.push((32 + rng.next_below(95) as u8) as char);
                    }
                    Atom::Class(set) => {
                        if !set.is_empty() {
                            out.push(set[rng.next_below(set.len() as u64) as usize]);
                        }
                    }
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end.saturating_sub(1).max(r.start) }
        }
    }

    /// Strategy yielding vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Lower than real proptest's 256: several suites run model
        // training inside the property body.
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// Namespace mirror of `proptest::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property body, reporting the failing
/// case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) at {}:{}",
                stringify!($a), stringify!($b), __a, __b, file!(), line!()
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both {:?}) at {}:{}",
                stringify!($a), stringify!($b), __a, file!(), line!()
            ));
        }
    }};
}

/// Defines property tests; see the real proptest's docs for the
/// grammar. Each `pat in strategy` argument is drawn fresh per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($items)* }
    };
}

/// Internal expansion of [`proptest!`] bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!("proptest {} failed on case {}: {}", stringify!($name), __case, __e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..200 {
            let u = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&u));
            let f = (-1.0f64..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let i = (-3i32..4).generate(&mut rng);
            assert!((-3..4).contains(&i));
        }
    }

    #[test]
    fn patterns_match_shape() {
        let mut rng = crate::TestRng::for_test("patterns");
        for _ in 0..100 {
            let s = "[a-c]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = "[A-Za-z #@.!?]{0,20}".generate(&mut rng);
            assert!(t.len() <= 20);
        }
    }

    #[test]
    fn vec_and_tuple_and_map_compose() {
        let mut rng = crate::TestRng::for_test("compose");
        let strat = prop::collection::vec((0u64..100, "[a-b]{1,2}"), 1..6)
            .prop_map(|items| items.len());
        for _ in 0..50 {
            let n = strat.generate(&mut rng);
            assert!((1..=5).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(x in 0u64..50, mut v in prop::collection::vec(0.0f64..1.0, 0..4)) {
            v.push(0.5);
            prop_assert!(x < 50);
            prop_assert_eq!(v.last().copied().unwrap(), 0.5);
            prop_assert_ne!(v.len(), 0);
        }
    }
}
