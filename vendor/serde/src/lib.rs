//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization framework under the same crate
//! names the code already uses. Unlike real serde's visitor-based
//! design, this implementation round-trips everything through a JSON
//! [`Value`] tree — dramatically simpler, and fully sufficient for the
//! document store, WAL, and synth corpus types that rely on it.
//!
//! The `serde_derive` proc-macro crate provides `#[derive(Serialize)]`
//! / `#[derive(Deserialize)]` for named-field structs and enums with
//! unit or named-field variants (externally tagged, matching serde's
//! default representation).

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{to_json_string, Map, Number, Value};

/// A type that can be converted into a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` to a JSON value tree.
    fn to_json_value(&self) -> Value;
}

/// A type that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value tree.
    ///
    /// # Errors
    /// Returns a human-readable description of the first mismatch.
    fn from_json_value(v: &Value) -> Result<Self, String>;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| format!("expected bool, got {v:?}"))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        v.as_str().map(str::to_string).ok_or_else(|| format!("expected string, got {v:?}"))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, String> {
                let n = v.as_u64().ok_or_else(|| format!("expected unsigned int, got {v:?}"))?;
                <$t>::try_from(n).map_err(|_| format!("{n} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, String> {
                let n = v.as_i64().ok_or_else(|| format!("expected int, got {v:?}"))?;
                <$t>::try_from(n).map_err(|_| format!("{n} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        v.as_f64().ok_or_else(|| format!("expected number, got {v:?}"))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        v.as_f64().map(|x| x as f32).ok_or_else(|| format!("expected number, got {v:?}"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        v.as_array()
            .ok_or_else(|| format!("expected array, got {v:?}"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeMap<String, T> {
    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_json_value());
        }
        Value::Object(m)
    }
}

impl<T: Deserialize> Deserialize for std::collections::BTreeMap<String, T> {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        let obj = v.as_object().ok_or_else(|| format!("expected object, got {v:?}"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), T::from_json_value(v)?))).collect()
    }
}

impl<T: Serialize> Serialize for std::collections::HashMap<String, T> {
    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_json_value());
        }
        Value::Object(m)
    }
}

impl<T: Deserialize> Deserialize for std::collections::HashMap<String, T> {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        let obj = v.as_object().ok_or_else(|| format!("expected object, got {v:?}"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), T::from_json_value(v)?))).collect()
    }
}
