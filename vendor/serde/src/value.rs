//! JSON value tree shared by the vendored `serde` / `serde_json`.

use std::collections::BTreeMap;
use std::fmt;

/// Map type used for JSON objects (sorted keys, like serde_json's
/// default `Map`).
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// A JSON number: integers keep full 64-bit precision, everything else
/// is an `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Finite float.
    Float(f64),
}

impl Number {
    /// Builds from a `u64`.
    pub fn from_u64(n: u64) -> Number {
        Number::PosInt(n)
    }

    /// Builds from an `i64`, normalizing non-negative values to
    /// `PosInt` so `5i64` and `5u64` compare equal.
    pub fn from_i64(n: i64) -> Number {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    /// Builds from an `f64` (non-finite values become `null`-ish 0.0;
    /// JSON cannot represent them).
    pub fn from_f64(x: f64) -> Number {
        Number::Float(if x.is_finite() { x } else { 0.0 })
    }

    /// Value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            _ => None,
        }
    }

    /// Value as `i64` when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }

    /// Value as `f64` (always available).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(n) => Some(n as f64),
            Number::NegInt(n) => Some(n as f64),
            Number::Float(x) => Some(x),
        }
    }

    /// `true` when the number is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self, Number::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        // Integers compare exactly; floats compare as floats. Mixed
        // int/float compares numerically (more forgiving than real
        // serde_json, which is what the store's tests rely on).
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x == x.trunc() && x.abs() < 1e15 {
                    // Keep float-ness visible on round numbers, like
                    // serde_json does.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key-value object.
    Object(Map),
}

/// Shared `null` for out-of-bounds `Index` results.
static NULL: Value = Value::Null;

impl Value {
    /// `true` when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// As a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As a non-negative integer, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As a signed integer, when it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As a float (any numeric value).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// As a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As an array, when it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As a mutable array, when it is one.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an object, when it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// As a mutable object, when it is one.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Mutable object field lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.as_object_mut().and_then(|m| m.get_mut(key))
    }

    /// Array element lookup.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(idx))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Number(Number::from_f64(x))
    }
}

impl From<f32> for Value {
    fn from(x: f32) -> Value {
        Value::Number(Number::from_f64(x as f64))
    }
}

macro_rules! from_int {
    (unsigned: $($u:ty),* ; signed: $($i:ty),*) => {
        $(impl From<$u> for Value {
            fn from(n: $u) -> Value { Value::Number(Number::from_u64(n as u64)) }
        })*
        $(impl From<$i> for Value {
            fn from(n: $i) -> Value { Value::Number(Number::from_i64(n as i64)) }
        })*
    };
}

from_int!(unsigned: u8, u16, u32, u64, usize; signed: i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_compact(&mut s, self);
        f.write_str(&s)
    }
}

/// Renders the value as compact JSON (used by `serde_json`).
pub fn to_json_string(v: &Value) -> String {
    let mut s = String::new();
    write_compact(&mut s, v);
    s
}
