//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports the shapes the workspace actually uses:
//!
//! * structs with named fields;
//! * enums whose variants are unit or have named fields (serialized
//!   with serde's default external tagging: `"Variant"` for unit
//!   variants, `{"Variant": {fields...}}` for struct variants).
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`
//! — they are not available offline). Generics are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<(String, Vec<String>)> },
}

/// Skips `#[...]` attribute pairs at the cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips an optional `pub` / `pub(...)` visibility prefix.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Extracts field names from the token body of a named-field brace
/// group. Types are skipped by munching to the next comma outside any
/// `<...>` nesting (proc-macro groups make (), [], {} atomic already).
fn parse_named_fields(body: &TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected field name, found {other}"),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde_derive: expected ':' after field `{name}`"),
        }
        // Skip the type: munch to the next top-level comma.
        let mut angle = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_input(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported (type `{name}`)");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive: expected braced body for `{name}`, found {other:?}"),
    };
    match kind.as_str() {
        "struct" => Shape::Struct { name, fields: parse_named_fields(&body) },
        "enum" => {
            let tokens: Vec<TokenTree> = body.into_iter().collect();
            let mut variants = Vec::new();
            let mut i = 0;
            while i < tokens.len() {
                i = skip_attrs(&tokens, i);
                let vname = match tokens.get(i) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    Some(other) => panic!("serde_derive: expected variant name, found {other}"),
                    None => break,
                };
                i += 1;
                let fields = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        parse_named_fields(&g.stream())
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        panic!("serde_derive: tuple variants not supported (`{name}::{vname}`)")
                    }
                    _ => Vec::new(),
                };
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == ',' {
                        i += 1;
                    }
                }
                variants.push((vname, fields));
            }
            Shape::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// `#[derive(Serialize)]` — see crate docs for the supported shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Shape::Struct { name, fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.insert({f:?}.to_string(), ::serde::Serialize::to_json_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::Value {{\n\
                 let mut __m = ::serde::Map::new();\n\
                 {inserts}\
                 ::serde::Value::Object(__m)\n\
                 }}\n}}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| {
                    if fields.is_empty() {
                        format!("{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n")
                    } else {
                        let binds = fields.join(", ");
                        let inserts: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "__inner.insert({f:?}.to_string(), ::serde::Serialize::to_json_value({f}));\n"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut __inner = ::serde::Map::new();\n\
                             {inserts}\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert({v:?}.to_string(), ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__m)\n\
                             }}\n"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}"
            )
        }
    };
    out.parse().expect("serde_derive: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]` — see crate docs for the supported shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Shape::Struct { name, fields } => {
            let builds: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_json_value(\
                         __obj.get({f:?}).unwrap_or(&::serde::Value::Null))\
                         .map_err(|e| format!(\"{name}.{f}: {{e}}\"))?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json_value(__v: &::serde::Value) -> ::std::result::Result<Self, String> {{\n\
                 let __obj = __v.as_object().ok_or_else(|| format!(\"{name}: expected object\"))?;\n\
                 Ok({name} {{\n{builds}}})\n\
                 }}\n}}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, fields)| fields.is_empty())
                .map(|(v, _)| format!("{v:?} => return Ok({name}::{v}),\n"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|(_, fields)| !fields.is_empty())
                .map(|(v, fields)| {
                    let builds: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_json_value(\
                                 __inner.get({f:?}).unwrap_or(&::serde::Value::Null))\
                                 .map_err(|e| format!(\"{name}::{v}.{f}: {{e}}\"))?,\n"
                            )
                        })
                        .collect();
                    format!(
                        "{v:?} => {{\n\
                         let __inner = __payload.as_object()\
                         .ok_or_else(|| format!(\"{name}::{v}: expected object payload\"))?;\n\
                         Ok({name}::{v} {{\n{builds}}})\n\
                         }}\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json_value(__v: &::serde::Value) -> ::std::result::Result<Self, String> {{\n\
                 if let Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}\
                 __other => return Err(format!(\"{name}: unknown unit variant {{__other}}\")),\n}}\n\
                 }}\n\
                 let __obj = __v.as_object().ok_or_else(|| format!(\"{name}: expected object\"))?;\n\
                 let (__tag, __payload) = __obj.iter().next()\
                 .ok_or_else(|| format!(\"{name}: empty enum object\"))?;\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => Err(format!(\"{name}: unknown variant {{__other}}\")),\n}}\n\
                 }}\n}}"
            )
        }
    };
    out.parse().expect("serde_derive: generated Deserialize impl must parse")
}
