//! Offline stand-in for `serde_json`.
//!
//! Provides the subset of the real crate's API that the workspace
//! uses: [`Value`] / [`Map`] / [`Number`] (re-exported from the
//! vendored `serde`), the [`json!`] macro, compact serialization
//! ([`to_string`] / [`to_vec`]) and parsing ([`from_str`] /
//! [`from_slice`]) through the [`serde::Serialize`] /
//! [`serde::Deserialize`] traits.

pub use serde::{Map, Number, Value};

mod parse;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Serializes to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::to_json_string(&value.to_json_value()))
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse::parse(s).map_err(Error)?;
    T::from_json_value(&v).map_err(Error)
}

/// Parses JSON bytes into any deserializable type.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from JSON-like syntax; see the real serde_json's
/// `json!` for the grammar. Object keys must be string literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal_list!(() () $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut __map = $crate::Map::new();
        $crate::json_internal_obj!(__map $($tt)+);
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal: array-element muncher (splits on top-level commas).
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_list {
    (($($out:expr,)*) ()) => { vec![$($out),*] };
    (($($out:expr,)*) ($($buf:tt)+)) => { vec![$($out,)* $crate::json!($($buf)+)] };
    (($($out:expr,)*) ($($buf:tt)+) , $($rest:tt)*) => {
        $crate::json_internal_list!(($($out,)* $crate::json!($($buf)+),) () $($rest)*)
    };
    (($($out:expr,)*) ($($buf:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal_list!(($($out,)*) ($($buf)* $next) $($rest)*)
    };
}

/// Internal: object-entry muncher. Keys are string literals.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_obj {
    ($map:ident) => {};
    ($map:ident $k:literal : $($rest:tt)+) => {
        $crate::json_internal_objval!($map ($k) () $($rest)+)
    };
}

/// Internal: object-value muncher (splits on top-level commas).
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_objval {
    ($map:ident ($k:literal) ($($buf:tt)+)) => {
        $map.insert(($k).to_string(), $crate::json!($($buf)+));
    };
    ($map:ident ($k:literal) ($($buf:tt)+) , $($rest:tt)*) => {
        $map.insert(($k).to_string(), $crate::json!($($buf)+));
        $crate::json_internal_obj!($map $($rest)*);
    };
    ($map:ident ($k:literal) ($($buf:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal_objval!($map ($k) ($($buf)* $next) $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(5), Value::Number(Number::from_u64(5)));
        assert_eq!(json!("hi"), Value::String("hi".to_string()));
        let arr = json!([1, "two", null, [3]]);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_str(), Some("two"));
        assert!(arr[2].is_null());
        assert_eq!(arr[3][0].as_u64(), Some(3));
        let x = 7u64;
        let obj = json!({"a": 1, "b": {"c": x + 1}, "d": [true, false]});
        assert_eq!(obj["a"].as_u64(), Some(1));
        assert_eq!(obj["b"]["c"].as_u64(), Some(8));
        assert_eq!(obj["d"][0].as_bool(), Some(true));
        assert_eq!(obj["missing"], Value::Null);
    }

    #[test]
    fn roundtrip_through_text() {
        let v = json!({"name": "x", "xs": [1.5, -2, 1e3], "nested": {"ok": true}});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = json!({"s": "line\nbreak \"quoted\" \\ tab\t"});
        let back: Value = from_slice(&to_vec(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parse_errors_reported() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"unterminated\": ").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
    }

    #[test]
    fn float_roundtrip_precision() {
        let v = json!([0.1, 1.0 / 3.0, 1e-300, 12345.6789]);
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }
}
