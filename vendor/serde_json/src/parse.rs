//! Recursive-descent JSON parser for the vendored `serde_json`.

use serde::{Map, Number, Value};

pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => {
                Err(format!("expected '{}' at offset {}, found '{}'", b as char, self.pos - 1, got as char))
            }
            None => Err(format!("expected '{}', found end of input", b as char)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected '{}' at offset {}", other as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos - 1)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos - 1)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs for astral-plane characters.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| format!("invalid \\u escape at {}", self.pos))?);
                    }
                    _ => return Err(format!("invalid escape at offset {}", self.pos - 1)),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| format!("invalid utf-8 in string: {e}"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or("truncated \\u escape")?;
            let d = (b as char).to_digit(16).ok_or(format!("bad hex digit at {}", self.pos - 1))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(n)));
            }
        }
        text.parse::<f64>()
            .map(|x| Value::Number(Number::Float(x)))
            .map_err(|_| format!("invalid number `{text}` at offset {start}"))
    }
}
